"""Heterogeneous fleet scheduler (docs/fleet.md).

Routes serving requests across N simulated devices — each worker owns a
:class:`~repro.pipeline.engine.DefconEngine` on its own
:class:`~repro.gpusim.device.DeviceSpec` — using cost-model routing
(expected completion time from the gpusim latency model), bounded EDF
queues with deadlines and load shedding, per-worker circuit breakers,
fault injection, retry-with-rerouting and graceful degradation to the
reference pytorch backend.  The whole thing is a deterministic
synchronous simulation on a :class:`~repro.fleet.scheduler.SimClock`.
"""

from repro.fleet.autoscale import (AutoscalePolicy, ElasticAutoscaler,
                                   engine_worker_provider, parse_autoscale,
                                   sim_worker_provider)
from repro.fleet.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.fleet.faults import (FaultInjector, FaultSpec, FaultyEngine,
                                WorkerCrashed, WorkerWedged, parse_fault)
from repro.fleet.queueing import (REASON_CLOSED, REASON_EXPIRED,
                                  REASON_NO_WORKER, REASON_QUEUE_FULL,
                                  REASON_RETRIES, BoundedDeadlineQueue,
                                  FleetRejection, FleetRequest)
from repro.fleet.router import (CostModelRouter, EngineCostModel,
                                RandomRouter, Router, RoundRobinRouter,
                                ShardAwareCostRouter, make_router)
from repro.fleet.loadgen import (Arrival, BurstEpisode, LoadSpec,
                                 RequestClass, parse_loadgen)
from repro.fleet.scheduler import (FleetScheduler, SimClock, build_fleet,
                                   build_worker, default_fleet_slos)
from repro.fleet.shard import (Interconnect, LinkSpec, ShardContext,
                               ShardPlan, ShardPlanner,
                               default_interconnect)
from repro.fleet.worker import BatchOutcome, FleetWorker

__all__ = [
    "Arrival", "AutoscalePolicy", "BatchOutcome", "BoundedDeadlineQueue",
    "BurstEpisode", "CircuitBreaker",
    "CostModelRouter", "ElasticAutoscaler", "EngineCostModel",
    "FaultInjector", "FaultSpec",
    "FaultyEngine", "FleetRejection", "FleetRequest", "FleetScheduler",
    "FleetWorker", "Interconnect", "LinkSpec", "LoadSpec", "RandomRouter",
    "RequestClass", "Router",
    "RoundRobinRouter", "ShardAwareCostRouter", "ShardContext", "ShardPlan",
    "ShardPlanner", "SimClock",
    "WorkerCrashed", "WorkerWedged", "build_fleet", "build_worker",
    "default_fleet_slos",
    "default_interconnect", "engine_worker_provider", "make_router",
    "parse_autoscale", "parse_fault", "parse_loadgen",
    "sim_worker_provider", "CLOSED", "OPEN", "HALF_OPEN",
    "REASON_CLOSED", "REASON_EXPIRED", "REASON_NO_WORKER",
    "REASON_QUEUE_FULL", "REASON_RETRIES",
]
