"""FleetWorker — one simulated device serving its own queue.

A worker owns:

* an **engine** (a :class:`~repro.pipeline.engine.DefconEngine` bound to
  one :class:`~repro.gpusim.device.DeviceSpec` and backend, with its own
  plan cache and tile-store warm start — or any ``classify``/``detect``
  stand-in in tests), wrapped in a
  :class:`~repro.fleet.faults.FaultyEngine` proxy when a fault injector
  is present;
* a :class:`~repro.serve.RequestBatcher` + private
  :class:`~repro.serve.ServingMetrics` — fleet batches flow through the
  same serving machinery as the single-engine stack, so engine failures
  exercise the real future/metrics failure path;
* a :class:`~repro.fleet.queueing.BoundedDeadlineQueue` (admission
  control, EDF, shedding);
* a :class:`~repro.fleet.breaker.CircuitBreaker` guarding the primary
  engine, plus an optional **reference fallback** (the pytorch backend)
  the worker degrades to while the breaker is open;
* a virtual device timeline: ``busy_until_ms`` on the scheduler's
  simulated clock, which is what the router's backlog term reads.

``predict_ms(shape, batch)`` is the per-worker cost model — an
:class:`~repro.fleet.router.EngineCostModel` for real engines, or any
injected callable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.fleet.breaker import CircuitBreaker
from repro.fleet.faults import FaultInjector, FaultyEngine, WorkerWedged
from repro.fleet.queueing import BoundedDeadlineQueue, FleetRequest
from repro.fleet.router import EngineCostModel, Predictor
from repro.serve import RequestBatcher, ServingMetrics


@dataclass
class BatchOutcome:
    """What one served (or failed) batch did to the simulation."""

    requests: List[FleetRequest]
    results: Optional[List[object]]     # None on failure
    error: Optional[BaseException]
    sim_ms: float                       # simulated device time charged
    engine: str                         # "primary" | "fallback"
    probe: bool = False                 # half-open breaker probe batch
    #: tracer span id of the ``fleet.batch`` span that served this batch
    #: (None without a tracer) — the exemplar link SLO windows print
    span_id: Optional[str] = None
    #: shard-execution summary when the batch ran under a ShardContext
    #: that actually split at least one layer (None otherwise)
    shard: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _default_predictor(shape: Tuple[int, ...], batch: int) -> float:
    """Constant per-request cost — ECT then reduces to queue backlog."""
    return float(batch)


class FleetWorker:
    """One heterogeneous-fleet member: engine + queue + breaker + costs."""

    def __init__(self, name: str, engine, *, task: str = "classify",
                 max_batch_size: int = 4, queue_capacity: int = 16,
                 predictor: Optional[Predictor] = None,
                 fallback_engine=None,
                 fallback_factory: Optional[Callable[[], object]] = None,
                 fallback_predictor: Optional[Predictor] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 injector: Optional[FaultInjector] = None,
                 registry=None, tracer=None,
                 wedge_timeout_ms: float = 100.0,
                 failure_ms: float = 1.0,
                 **task_kwargs):
        self.name = name
        self.engine = engine
        self.task = task
        self.max_batch_size = max_batch_size
        self.queue = BoundedDeadlineQueue(queue_capacity)
        self.breaker = breaker if breaker is not None \
            else CircuitBreaker(name)
        self.injector = injector
        self.tracer = tracer
        self.wedge_timeout_ms = wedge_timeout_ms
        #: sim time charged for a fast failure (crash detection/abort cost)
        self.failure_ms = failure_ms
        self.task_kwargs = task_kwargs
        #: virtual device timeline (absolute sim ms)
        self.busy_until_ms = 0.0
        #: warm-up gate (absolute sim ms): an autoscaled worker is not
        #: routable — and its timeline accepts no dispatch — before this
        #: (tile-store warm start vs cold tune set different delays)
        self.ready_at_ms = 0.0
        #: scale-down drains the queue instead of killing the worker: a
        #: draining worker takes no new routing but serves what it holds
        #: (the zero-lost-futures invariant survives elasticity)
        self.draining = False
        #: sim time FaultyEngine sees — updated at each serve
        self._now_ms = 0.0

        self.spec = getattr(engine, "spec", None)
        self.backend = getattr(engine, "backend", "")
        if predictor is None and self.spec is not None:
            predictor = EngineCostModel(engine)
        self._predictor: Predictor = predictor or _default_predictor
        self._fallback_predictor = fallback_predictor

        self._fallback_engine = fallback_engine
        self._fallback_factory = fallback_factory
        self._fallback_batcher: Optional[RequestBatcher] = None

        served_engine = engine
        if injector is not None:
            served_engine = FaultyEngine(engine, injector, name,
                                         lambda: self._now_ms)
        #: each worker drains its own batcher; metrics are private to the
        #: worker (one ServingMetrics home per device)
        self.serving_metrics = ServingMetrics()
        self.batcher = RequestBatcher(
            served_engine, task=task, max_batch_size=max_batch_size,
            max_wait_s=0.0, metrics=self.serving_metrics, tracer=tracer,
            **task_kwargs)

        self._batches = None
        self._batch_sim_ms = None
        self._batch_failures = None
        self._depth_gauge = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> "FleetWorker":
        self._batches = registry.counter(
            "fleet_batches",
            help="served fleet batches by worker and engine kind")
        self._batch_sim_ms = registry.histogram(
            "fleet_batch_sim_ms",
            help="simulated device milliseconds per fleet batch")
        self._batch_failures = registry.counter(
            "fleet_batch_failures", help="failed fleet batches by worker")
        self._depth_gauge = registry.gauge(
            "fleet_queue_depth", help="queued requests per worker")
        if self.breaker._counter is None:
            self.breaker.bind_registry(registry)
        return self

    # ------------------------------------------------------------------
    # routing views
    # ------------------------------------------------------------------
    @property
    def can_degrade(self) -> bool:
        return (self._fallback_engine is not None
                or self._fallback_factory is not None)

    @property
    def degraded(self) -> bool:
        """Serving on the reference fallback (breaker not closed)."""
        return not self.breaker.closed and self.can_degrade

    def routable(self, now_ms: float) -> bool:
        """May the router place new work here?"""
        if self.draining or now_ms < self.ready_at_ms:
            return False
        if self.breaker.closed:
            return True
        if self.can_degrade:
            return True
        return self.breaker.probe_due(now_ms)

    def predict_ms(self, shape: Tuple[int, ...], batch: int = 1) -> float:
        """Predicted service time of ``batch`` same-shaped requests on the
        engine that would actually run them (fallback while degraded)."""
        if self.degraded:
            return self._get_fallback_predictor()(shape, batch)
        return self._predictor(shape, batch)

    # -- sharding views (used by the fleet shard planner) --------------
    @property
    def shardable(self) -> bool:
        """May this worker take part in a sharded plan right now?

        Requires a real device (engine with a spec), a closed breaker
        (degraded fallback engines run the reference backend — no column
        slices to contribute), not draining towards removal, and a
        shard-capable cost model.
        """
        return (self.spec is not None and self.breaker.closed
                and not self.degraded and not self.draining
                and getattr(self._predictor, "supports_shards", False))

    def predict_shard_ms(self, shape: Tuple[int, ...], batch: int,
                         shard: Tuple) -> Optional[float]:
        """Predicted ms of one shard descriptor here (None if unpriceable)."""
        if not self.shardable:
            return None
        return self._predictor(shape, batch, shard)

    def site_configs(self, shape: Tuple[int, ...], batch: int = 1):
        """Deformable site geometries scaled to this request (planner view)."""
        if not getattr(self._predictor, "supports_shards", False):
            return []
        return self._predictor.site_configs(shape, batch)

    def site_split_ms(self, shape: Tuple[int, ...], batch: int = 1):
        """Per-site (sampling ms, GEMM ms) on this device, or None."""
        if not self.shardable:
            return None
        return self._predictor.site_split_ms(shape, batch)

    def shard_site_ms(self, shape: Tuple[int, ...], batch: int, kind: str,
                      nums: Tuple[int, ...], index: int):
        """Per-site (sampling ms, GEMM ms) of this worker's exact shard."""
        if not self.shardable or not hasattr(self._predictor,
                                             "shard_site_ms"):
            return None
        return self._predictor.shard_site_ms(shape, batch, kind, nums,
                                             index)

    def backlog_ms(self, now_ms: float) -> float:
        """Device time owed before a new arrival could start."""
        return max(0.0, self.busy_until_ms - now_ms) + self.queue.pending_ms

    def estimated_completion_ms(self, shape: Tuple[int, ...],
                                now_ms: float) -> float:
        """The router's ECT: backlog + this request's predicted service."""
        return self.backlog_ms(now_ms) + self.predict_ms(shape, 1)

    # ------------------------------------------------------------------
    # queue management (driven by the scheduler)
    # ------------------------------------------------------------------
    def enqueue(self, req: FleetRequest) -> None:
        req.predicted_ms = self.predict_ms(req.shape, 1)
        self.queue.push(req)        # raises FleetRejection when full
        self._set_depth()

    def _set_depth(self) -> None:
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self.queue), worker=self.name)

    def end_session(self, session: str) -> int:
        """Release this worker's per-session plan-cache state for one
        ended video stream (docs/streaming.md); returns the number of
        anchors dropped.  Engines without session support (test doubles,
        the pytorch fallback) are a no-op.
        """
        end = getattr(self.engine, "end_session", None)
        if callable(end):
            return int(end(session))
        cache = getattr(self.engine, "plan_cache", None)
        if cache is not None and hasattr(cache, "end_session"):
            return int(cache.end_session(session))
        return 0

    # ------------------------------------------------------------------
    # fallback plumbing
    # ------------------------------------------------------------------
    def _get_fallback_batcher(self) -> RequestBatcher:
        if self._fallback_batcher is None:
            if self._fallback_engine is None:
                self._fallback_engine = self._fallback_factory()
            self._fallback_batcher = RequestBatcher(
                self._fallback_engine, task=self.task,
                max_batch_size=self.max_batch_size, max_wait_s=0.0,
                metrics=ServingMetrics(), tracer=self.tracer,
                **self.task_kwargs)
        return self._fallback_batcher

    def _get_fallback_predictor(self) -> Predictor:
        if self._fallback_predictor is None:
            if self._fallback_engine is None and self.spec is not None \
                    and self._fallback_factory is not None:
                self._fallback_engine = self._fallback_factory()
            fb = self._fallback_engine
            if fb is not None and getattr(fb, "spec", None) is not None:
                self._fallback_predictor = EngineCostModel(fb)
            else:
                self._fallback_predictor = self._predictor
        return self._fallback_predictor

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve_batch(self, batch: List[FleetRequest], now_ms: float,
                    shard_ctx=None) -> BatchOutcome:
        """Run one same-shaped EDF batch; returns the outcome with the
        simulated time charged to this worker's device timeline.

        ``shard_ctx`` (a :class:`~repro.fleet.shard.ShardContext`) splits
        the batch's deformable layers across fleet participants; it is
        only honoured on the primary engine — a degraded or probing
        worker serves unsharded.
        """
        if not batch:
            raise ValueError("serve_batch() needs a non-empty batch")
        self._now_ms = now_ms
        probe = False
        use_primary = self.breaker.closed
        if not use_primary and self.breaker.probe_due(now_ms):
            self.breaker.begin_probe(now_ms)
            use_primary = True
            probe = True
        if not use_primary and not self.can_degrade:
            # the scheduler only routes here when routable(); be explicit
            # if that contract is ever violated
            raise RuntimeError(
                f"worker {self.name}: breaker {self.breaker.state} and no "
                "fallback — not servable")
        if not use_primary or probe:
            shard_ctx = None

        if self.tracer is not None:
            with self.tracer.span(
                    "fleet.batch", cat="fleet", worker=self.name,
                    size=len(batch),
                    requests=[r.id for r in batch],
                    engine="primary" if use_primary else "fallback",
                    probe=probe, start_sim_ms=round(now_ms, 3),
                    shard_plan=(shard_ctx.plan.label
                                if shard_ctx is not None else None)):
                outcome = self._serve_batch_inner(batch, now_ms,
                                                  use_primary, probe,
                                                  shard_ctx)
                outcome.span_id = self.tracer.current_span_id()
        else:
            outcome = self._serve_batch_inner(batch, now_ms, use_primary,
                                              probe, shard_ctx)
        self._set_depth()
        return outcome

    def _serve_batch_inner(self, batch: List[FleetRequest], now_ms: float,
                           use_primary: bool, probe: bool,
                           shard_ctx=None) -> BatchOutcome:
        batcher = self.batcher if use_primary \
            else self._get_fallback_batcher()
        log = getattr(batcher.engine, "log", None)
        sim0 = float(log.total_ms) if log is not None else 0.0
        if shard_ctx is not None:
            with shard_ctx.install(self.engine):
                futures = [batcher.submit(r.image) for r in batch]
                batcher.flush()
        else:
            futures = [batcher.submit(r.image) for r in batch]
            batcher.flush()

        error = next((f.exception() for f in futures
                      if f.exception() is not None), None)
        shape = batch[0].shape
        if error is not None:
            sim_ms = (self.wedge_timeout_ms
                      if isinstance(error, WorkerWedged)
                      else self.failure_ms)
            if use_primary:
                self.breaker.record_failure(now_ms)
            if self._batch_failures is not None:
                self._batch_failures.inc(worker=self.name)
            outcome = BatchOutcome(batch, None, error, sim_ms,
                                   "primary" if use_primary else "fallback",
                                   probe)
        else:
            results = [f.result() for f in futures]
            shard_summary = None
            if shard_ctx is not None and shard_ctx.applied:
                # the interconnect-aware timeline replay replaces the
                # serial log delta: shard compute overlapped across
                # participant devices, scatter/gather serialised here
                sim_ms = shard_ctx.finalize()
                shard_summary = shard_ctx.summary()
            else:
                delta = (float(log.total_ms) - sim0) \
                    if log is not None else 0.0
                sim_ms = delta if delta > 0.0 \
                    else self.predict_ms(shape, len(batch))
            if use_primary and self.injector is not None:
                sim_ms *= self.injector.latency_factor(self.name, now_ms)
            if use_primary:
                self.breaker.record_success(now_ms)
            outcome = BatchOutcome(batch, results, None, sim_ms,
                                   "primary" if use_primary else "fallback",
                                   probe, shard=shard_summary)
        if self._batches is not None:
            self._batches.inc(worker=self.name, engine=outcome.engine,
                              ok=str(outcome.ok).lower())
        if self._batch_sim_ms is not None:
            self._batch_sim_ms.observe(outcome.sim_ms, worker=self.name)
        return outcome

    def __repr__(self) -> str:
        return (f"FleetWorker({self.name!r}, backend={self.backend!r}, "
                f"queue={len(self.queue)}, breaker={self.breaker.state})")
