"""FleetScheduler — cost-model routing across heterogeneous workers.

The fleet is a **synchronous event-driven simulation** on a
:class:`SimClock` (milliseconds): each :meth:`FleetScheduler.step` picks
the non-idle worker whose next batch would start earliest, advances the
clock to that start time, sheds expired requests, serves one EDF batch
and charges the worker's virtual device timeline with the simulated
batch latency.  No scheduler thread exists, which is what makes routing
decisions, retries, breaker walks and every metric bit-stable for a
fixed seed — the acceptance criterion for the fleet's determinism test.

Request lifecycle (every future *always* resolves):

``submit()`` → route (cost model / round-robin / random) → bounded EDF
queue → serve (primary engine, half-open probe, or pytorch fallback
while degraded) → ``future.set_result`` — or, on engine failure,
retry-with-rerouting away from the failed worker until ``max_attempts``,
after which the future carries the original error; admission-control,
deadline and shutdown drops carry an explicit
:class:`~repro.fleet.queueing.FleetRejection`.  Requests queued on a
worker whose breaker opens with no fallback are rerouted to servable
workers — or held until the half-open probe when no one else can take
them — never dispatched into an unservable worker.

:func:`build_fleet` assembles the real thing: one
:class:`~repro.pipeline.engine.DefconEngine` per device preset (own plan
cache, optional tile-store warm start per device) with a reference
pytorch-backend fallback for graceful degradation.
"""

from __future__ import annotations

import math
from concurrent.futures import Future
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fleet.breaker import CircuitBreaker
from repro.fleet.faults import FaultInjector, FaultSpec, parse_fault
from repro.fleet.queueing import (REASON_CLOSED, REASON_EXPIRED,
                                  REASON_NO_WORKER, REASON_QUEUE_FULL,
                                  REASON_RETRIES, FleetRejection,
                                  FleetRequest)
from repro.fleet.router import Router, make_router
from repro.fleet.worker import FleetWorker
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLO
from repro.obs.timeseries import Exemplar

#: default window width for the fleet's time-series metrics (sim ms) —
#: simulated per-request latencies are sub-millisecond, so quarter-ms
#: windows give a demo-sized run a real attainment curve instead of one
#: bucket
DEFAULT_SLO_WINDOW_MS = 0.25
#: windows retained on the fleet's windowed series
DEFAULT_SLO_RETENTION = 256


def default_fleet_slos(p99_ms: float, availability: float = 0.99
                       ) -> List[SLO]:
    """The fleet's stock SLO pair: tail latency + availability.

    Both read ``fleet_request_latency_ms`` (windowed on the SimClock);
    availability additionally counts ``fleet_request_failures``
    observations — requests that resolved without ever producing a
    latency sample — as bad.
    """
    return [
        SLO(name="fleet-p99-latency", metric="fleet_request_latency_ms",
            objective="quantile", quantile=99.0, threshold_ms=p99_ms),
        SLO(name="fleet-availability", metric="fleet_request_latency_ms",
            objective="availability", threshold_ms=p99_ms,
            target=availability, bad_metric="fleet_request_failures"),
    ]


class SimClock:
    """Monotonic simulated time in milliseconds."""

    def __init__(self, start_ms: float = 0.0):
        self.now_ms = float(start_ms)

    def advance_to(self, t_ms: float) -> None:
        if t_ms > self.now_ms:
            self.now_ms = float(t_ms)

    def advance(self, dt_ms: float) -> None:
        if dt_ms < 0:
            raise ValueError("time only moves forward")
        self.now_ms += dt_ms

    def __repr__(self) -> str:
        return f"SimClock({self.now_ms:.3f}ms)"


class FleetScheduler:
    """Route requests across workers, serve them, survive failures."""

    def __init__(self, workers: Sequence[FleetWorker],
                 router: Union[str, Router] = "cost", *,
                 clock: Optional[SimClock] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer=None, max_attempts: int = 3, seed: int = 0,
                 slo_window_ms: float = DEFAULT_SLO_WINDOW_MS,
                 slo_retention: int = DEFAULT_SLO_RETENTION,
                 shard_planner=None, interconnect=None,
                 session_spill_factor: float = 3.0):
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate worker names: {names}")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.workers: List[FleetWorker] = list(workers)
        self.router = make_router(router, seed=seed)
        self.clock = clock if clock is not None else SimClock()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer
        self.max_attempts = max_attempts
        if session_spill_factor <= 1.0:
            raise ValueError("session_spill_factor must be > 1 (1x would "
                             "spill on any backlog at all)")
        #: session stickiness override: a pinned worker keeps a stream
        #: until its ECT exceeds ``session_spill_factor`` × the best
        #: candidate's — locality is worth some queueing, not unbounded
        #: queueing (docs/streaming.md)
        self.session_spill_factor = float(session_spill_factor)
        #: video-stream session → name of the worker holding its
        #: plan-cache anchor (evicted when the stream ends)
        self._session_affinity: Dict[str, str] = {}
        #: unresolved request count per open session; eviction waits for
        #: the end-flagged frame AND a drained count — a retried sibling
        #: frame resolving late must not re-pin an ended stream
        self._session_open: Dict[str, int] = {}
        self._session_closing: set = set()
        self._session_resolved: set = set()
        #: intra-request parallelism (None = sharding off); the planner
        #: resolves a plan per batch at serve time, and a shard-aware
        #: router additionally prices split plans at routing time
        self.shard_planner = shard_planner
        self.interconnect = interconnect if interconnect is not None \
            else getattr(shard_planner, "interconnect", None)
        if shard_planner is not None \
                and hasattr(self.router, "bind_planner") \
                and getattr(self.router, "planner", None) is None:
            self.router.bind_planner(shard_planner)
        #: every serve-time shard-plan resolution, in order — the bench's
        #: per-request decision table
        self.shard_decisions: List[dict] = []
        #: every routing decision, in order — the ``repro fleet plan`` view
        self.decisions: List[dict] = []
        #: every request ever submitted (futures audited by tests/bench)
        self.requests: List[FleetRequest] = []
        #: completion latencies in resolution order (sim ms) — the raw
        #: samples behind the bench's p50/p99-vs-offered-load curves
        self.latencies_ms: List[float] = []
        self._next_id = 0
        self._closed = False

        for w in self.workers:
            if w._batches is None:
                w.bind_registry(self.registry)
        self._submitted = self.registry.counter(
            "fleet_requests_submitted", help="requests offered to the fleet")
        self._completed = self.registry.counter(
            "fleet_requests_completed",
            help="requests resolved with a result, by serving worker")
        self._rejected = self.registry.counter(
            "fleet_requests_rejected",
            help="requests resolved with an explicit rejection, by reason")
        self._retried = self.registry.counter(
            "fleet_requests_retried",
            help="failed requests rerouted for another attempt, by the "
                 "worker that failed them")
        self._rerouted = self.registry.counter(
            "fleet_requests_rerouted",
            help="queued requests moved off a breaker-pinned worker, by "
                 "the worker routed away from")
        # time-series metrics on the *simulated* clock: per-request
        # submit→resolve latency (completions, with an exemplar naming
        # the fleet.batch span that served the request) and failures
        # (rejections / exhausted retries, which never produce a latency
        # sample) — the series the fleet SLOs are evaluated over.
        self._latency_windows = self.registry.windowed_histogram(
            "fleet_request_latency_ms",
            help="per-request submit-to-complete latency (simulated ms), "
                 "windowed on the fleet SimClock",
            window_ms=slo_window_ms, retention=slo_retention,
            clock=lambda: self.clock.now_ms)
        self._failure_windows = self.registry.windowed_histogram(
            "fleet_request_failures",
            help="requests resolved without a result (rejections and "
                 "exhausted retries), windowed on the fleet SimClock; "
                 "the value is the sim-ms from submit to resolution",
            window_ms=slo_window_ms, retention=slo_retention,
            clock=lambda: self.clock.now_ms)
        self._shard_plans = self.registry.counter(
            "fleet_shard_plans",
            help="serve-time shard-plan resolutions by plan kind")
        self._shard_batches = self.registry.counter(
            "fleet_shard_batches",
            help="batches actually served through a sharded plan")
        self._shard_traffic = self.registry.counter(
            "fleet_shard_traffic_bytes",
            help="interconnect bytes moved by sharded batches, by "
                 "direction (scatter/gather)")
        self._shard_halo = self.registry.counter(
            "fleet_shard_halo_rows",
            help="deformation-halo input rows shipped by row-band shards")
        self._shard_sim_ms = self.registry.histogram(
            "fleet_shard_sim_ms",
            help="simulated duration of sharded batches (ms)")
        self._session_spills = self.registry.counter(
            "fleet_session_spills",
            help="session-affinity overrides: frames routed off their "
                 "sticky worker because its ECT exceeded the spill "
                 "factor, by the worker spilled from")
        self._sessions_ended = self.registry.counter(
            "fleet_sessions_ended",
            help="video-stream sessions whose per-session state was "
                 "evicted at stream end")

    # ------------------------------------------------------------------
    # submission + routing
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray,
               deadline_ms: Optional[float] = None, *,
               priority: int = 0, session: Optional[str] = None,
               end_of_session: bool = False) -> Future:
        """Offer one (C, H, W) image; ``deadline_ms`` is relative to now.

        Returns a future that always resolves: a task result, the
        original engine error (retries exhausted), or a
        :class:`FleetRejection` naming why the fleet dropped it.
        ``priority`` breaks EDF ties between equal deadlines (higher
        serves first) — the multi-tenant request-class knob.

        ``session`` names the video stream the frame belongs to: routing
        sticks the stream to one worker (keeping its plan-cache anchor
        hot) unless that worker's ECT exceeds ``session_spill_factor`` ×
        the best candidate's.  When the frame flagged ``end_of_session``
        resolves, the session's per-worker state is evicted.
        """
        if self._closed:
            raise FleetRejection(REASON_CLOSED, "fleet is closed")
        img = np.asarray(image, dtype=np.float32)
        if img.ndim != 3:
            raise ValueError(f"expected one (C, H, W) image, got shape "
                             f"{img.shape}")
        now = self.clock.now_ms
        deadline = now + float(deadline_ms) if deadline_ms is not None \
            else None
        req = FleetRequest(self._next_id, img, now, deadline,
                           priority=priority, session=session,
                           end_of_session=end_of_session)
        self._next_id += 1
        self.requests.append(req)
        self._submitted.inc()
        if session is not None:
            self._session_open[session] = \
                self._session_open.get(session, 0) + 1

        worker, ects = self._select(req.shape, now, frozenset(),
                                    session=session)
        self._record_decision(req, worker, ects, now)
        if worker is None:
            routable = any(w.routable(now) for w in self.workers)
            self._reject(req, REASON_QUEUE_FULL if routable
                         else REASON_NO_WORKER,
                         "all routable queues at capacity" if routable
                         else "no worker is routable")
        else:
            self._enqueue(worker, req)
        return req.future

    def _select(self, shape: Tuple[int, ...], now: float,
                exclude: FrozenSet[str],
                session: Optional[str] = None):
        candidates = [w for w in self.workers
                      if w.name not in exclude and w.routable(now)
                      and not w.queue.full]
        if not candidates:
            return None, {}
        worker = self.router.choose(candidates, shape, now)
        ects = self.router.ect_table(candidates, shape, now)
        if session is not None:
            worker = self._apply_affinity(session, worker, candidates,
                                          ects, shape, now)
            self._session_affinity[session] = worker.name
        return worker, ects

    def _apply_affinity(self, session: str, chosen: FleetWorker,
                        candidates: List[FleetWorker],
                        ects: Dict[str, float], shape: Tuple[int, ...],
                        now: float) -> FleetWorker:
        """Session stickiness as a routing overlay (works with every
        router policy): keep the stream on its pinned worker while the
        pin's ECT stays within ``session_spill_factor`` × the router's
        choice; otherwise spill — the cost model overrides locality on a
        saturated worker.  A shard-aware router's ``plan:`` ECT rows are
        never worker names, so the table lookups below stay unambiguous.
        """
        pinned_name = self._session_affinity.get(session)
        if pinned_name is None or pinned_name == chosen.name:
            return chosen
        pinned = next((w for w in candidates if w.name == pinned_name),
                      None)
        if pinned is None:
            # pinned worker removed / unroutable / full — repin on the
            # router's choice (counted as a spill: the anchor goes cold)
            self._session_spills.inc(worker=pinned_name)
            return chosen
        pinned_ect = ects.get(pinned_name)
        if pinned_ect is None:
            pinned_ect = pinned.estimated_completion_ms(shape, now)
        best_ect = ects.get(chosen.name)
        if best_ect is None:
            best_ect = chosen.estimated_completion_ms(shape, now)
        if pinned_ect <= self.session_spill_factor * max(best_ect, 1e-9):
            return pinned
        self._session_spills.inc(worker=pinned_name)
        return chosen

    def _record_decision(self, req: FleetRequest,
                         worker: Optional[FleetWorker],
                         ects: Dict[str, float], now: float) -> None:
        self.decisions.append({
            "request": req.id,
            "attempt": req.attempts,
            "sim_ms": round(now, 3),
            "policy": self.router.name,
            "worker": worker.name if worker is not None else None,
            "ect_ms": {name: round(ms, 3)
                       for name, ms in sorted(ects.items())},
        })

    def _enqueue(self, worker: FleetWorker, req: FleetRequest) -> None:
        try:
            worker.enqueue(req)
        except FleetRejection as exc:       # defensive: capacity raced away
            self._reject(req, exc.reason, exc.detail)

    def _reject(self, req: FleetRequest, reason: str,
                detail: str = "") -> None:
        if not req.future.done():
            req.future.set_exception(FleetRejection(reason, detail))
        self._rejected.inc(reason=reason)
        self._record_failure_window(req)
        self._maybe_end_session(req)

    def _maybe_end_session(self, req: FleetRequest) -> None:
        """Evict per-session state once a stream is fully resolved.

        "Fully" means the end-flagged frame has resolved *and* no other
        frame of the session is still in flight — sibling frames can
        resolve after the end frame (retries, cross-worker batching, a
        rejected end frame), and their reroute path must not re-pin an
        ended stream.  Retries may also have warmed anchors on more than
        one worker, so every worker is asked to release the session, not
        just the affinity pin.
        """
        if req.session is None or req.id in self._session_resolved:
            return
        self._session_resolved.add(req.id)
        session = req.session
        self._session_open[session] = self._session_open.get(session, 1) - 1
        if req.end_of_session:
            self._session_closing.add(session)
        if session not in self._session_closing \
                or self._session_open.get(session, 0) > 0:
            return
        self._session_open.pop(session, None)
        self._session_closing.discard(session)
        self._session_affinity.pop(session, None)
        for w in self.workers:
            w.end_session(session)
        self._sessions_ended.inc()

    def _record_failure_window(self, req: FleetRequest) -> None:
        now = self.clock.now_ms
        self._failure_windows.observe(max(0.0, now - req.submit_ms),
                                      ts_ms=now)

    # ------------------------------------------------------------------
    # the simulation loop
    # ------------------------------------------------------------------
    def pending(self) -> int:
        return sum(len(w.queue) for w in self.workers)

    def _start_ms(self, worker: FleetWorker, now: float) -> float:
        """When could ``worker`` actually start its next batch?

        Usually when its device goes idle — but a freshly autoscaled
        worker accepts no dispatch before its warm-up ``ready_at_ms``,
        and a worker whose breaker is open with no fallback can only run
        again as a half-open probe, so its queue is pinned until the
        cooldown elapses.  Dispatching to it any earlier would hit
        serve_batch()'s not-servable guard.
        """
        start = max(worker.busy_until_ms, worker.ready_at_ms, now)
        b = worker.breaker
        if b.closed or worker.can_degrade or b.probe_due(start):
            return start
        if b.opened_at_ms is not None:
            return max(start, b.opened_at_ms + b.cooldown_ms)
        return start

    def step(self) -> bool:
        """Serve one batch on the worker that can start earliest.

        Returns False when every queue is empty (nothing to simulate).
        """
        busy = [w for w in self.workers if len(w.queue)]
        if not busy:
            return False
        now = self.clock.now_ms
        worker = min(busy, key=lambda w: (self._start_ms(w, now), w.name))
        start = self._start_ms(worker, now)
        if start > max(worker.busy_until_ms, worker.ready_at_ms, now):
            # breaker-pinned: the queue cannot move before the probe is
            # due.  First offer the queued requests to workers that could
            # serve them sooner; only sleep until the probe when nothing
            # changed.
            if self._reroute_pinned(worker, now):
                return True
        self.clock.advance_to(start)

        for r in worker.queue.shed_expired(start):
            self._reject(r, REASON_EXPIRED,
                         f"deadline {r.deadline_ms:.1f}ms passed at "
                         f"{start:.1f}ms while queued on {worker.name}")
        worker._set_depth()
        if not len(worker.queue):
            return True

        batch = worker.queue.pop_batch(worker.max_batch_size)
        ctx = self._plan_shards(worker, batch, start)
        outcome = worker.serve_batch(batch, start, shard_ctx=ctx)
        worker.busy_until_ms = start + outcome.sim_ms
        done = worker.busy_until_ms
        if ctx is not None:
            self._finish_shards(ctx, outcome)
        if outcome.ok:
            for r, res in zip(batch, outcome.results):
                if not r.future.done():
                    r.future.set_result(res)
                self._completed.inc(worker=worker.name)
                latency = max(0.0, done - r.submit_ms)
                exemplar = None
                if outcome.span_id is not None:
                    exemplar = Exemplar(
                        value=latency, span_id=outcome.span_id,
                        labels=(("request", str(r.id)),
                                ("worker", worker.name)),
                        ts_ms=done)
                self._latency_windows.observe(latency, ts_ms=done,
                                              exemplar=exemplar)
                self.latencies_ms.append(latency)
                self._maybe_end_session(r)
        else:
            for r in batch:
                self._handle_failure(r, worker, outcome.error, done)
        return True

    def _plan_shards(self, worker: FleetWorker, batch: List[FleetRequest],
                     start: float):
        """Resolve the serve-time shard plan for one batch.

        Returns a :class:`~repro.fleet.shard.ShardContext` when the plan
        actually splits work (None for unsharded serving — including
        ``kind="single"`` resolutions, which are still recorded so the
        decision table shows why the planner kept the batch local).
        """
        if self.shard_planner is None:
            return None
        plan = self.shard_planner.resolve(self.workers, worker,
                                          batch[0].shape, len(batch), start)
        if plan is None:
            return None
        from repro.fleet.shard import ShardContext

        self._shard_plans.inc(kind=plan.kind)
        row = {"requests": [r.id for r in batch],
               "sim_ms": round(start, 3),
               "worker": worker.name,
               "plan": plan.label,
               "kind": plan.kind,
               "workers": list(plan.workers),
               "predicted_ms": round(plan.predicted_ms, 3),
               "simulated_ms": None,
               "applied": False}
        self.shard_decisions.append(row)
        if plan.kind == "single":
            return None
        ctx = ShardContext(plan, {w.name: w for w in self.workers},
                           self.interconnect, start, batch=len(batch),
                           tracer=self.tracer)
        ctx.decision_row = row
        return ctx

    def _finish_shards(self, ctx, outcome) -> None:
        """Account a sharded serve: participant timelines + metrics."""
        row = ctx.decision_row
        if row is not None:
            row["applied"] = bool(ctx.applied and outcome.ok)
            if outcome.ok:
                row["simulated_ms"] = round(outcome.sim_ms, 3)
        if not (outcome.ok and ctx.applied):
            return
        for name, busy in sorted(ctx.participant_busy.items()):
            w = next(w for w in self.workers if w.name == name)
            w.busy_until_ms = max(w.busy_until_ms, busy)
        self._shard_batches.inc(kind=ctx.plan.kind)
        self._shard_sim_ms.observe(outcome.sim_ms, kind=ctx.plan.kind)
        if ctx.scatter_bytes:
            self._shard_traffic.inc(int(ctx.scatter_bytes),
                                    direction="scatter")
        if ctx.gather_bytes:
            self._shard_traffic.inc(int(ctx.gather_bytes),
                                    direction="gather")
        if ctx.halo_rows:
            self._shard_halo.inc(int(ctx.halo_rows))

    def drain(self, max_steps: int = 100_000) -> int:
        """Run the simulation until every queue is empty; returns steps."""
        steps = 0
        while self.step():
            steps += 1
            if steps >= max_steps:
                raise RuntimeError(
                    f"fleet did not drain within {max_steps} steps "
                    f"({self.pending()} requests still queued)")
        return steps

    # ------------------------------------------------------------------
    # dynamic membership + open-loop driving
    # ------------------------------------------------------------------
    def add_worker(self, worker: FleetWorker) -> None:
        """Enrol a new member mid-run (the autoscaler's scale-up path).

        Routers re-read the worker list on every choice, so membership
        changes take effect at the next routing decision; the worker is
        not routable before its ``ready_at_ms`` warm-up gate.
        """
        if self._closed:
            raise RuntimeError("cannot add workers to a closed fleet")
        if any(w.name == worker.name for w in self.workers):
            raise ValueError(f"duplicate worker name {worker.name!r}")
        if worker._batches is None:
            worker.bind_registry(self.registry)
        self.workers.append(worker)

    def remove_worker(self, name: str) -> FleetWorker:
        """Retire a member whose queue is empty (the end of a drain).

        Refuses to remove a worker still holding requests — scale-down
        must *drain*, never kill, or futures would be lost.
        """
        worker = next((w for w in self.workers if w.name == name), None)
        if worker is None:
            raise KeyError(f"no fleet worker named {name!r}")
        if len(worker.queue):
            raise RuntimeError(
                f"refusing to remove {name!r} with {len(worker.queue)} "
                f"queued requests (drain first: zero lost futures)")
        if len(self.workers) == 1:
            raise RuntimeError("cannot remove the last fleet worker")
        worker.batcher.close(flush=False)
        if worker._fallback_batcher is not None:
            worker._fallback_batcher.close(flush=False)
        self.workers.remove(worker)
        # streams pinned here repin (and count a spill) at their next
        # frame's routing decision
        self._session_affinity = {s: n for s, n
                                  in self._session_affinity.items()
                                  if n != name}
        return worker

    def run_load(self, arrivals, *, autoscaler=None,
                 max_steps: int = 1_000_000) -> List[Future]:
        """Drive the fleet open-loop from a loadgen arrival stream.

        Merges three event sources on the simulated clock — the next
        arrival, the earliest batch start among queued workers, and the
        autoscaler's next evaluation — and always serves the earliest.
        Ties go to the autoscaler (so membership changes land before the
        work they react to), then to arrivals (so a batch never starts
        before a same-tick submission has been routed).  Returns the
        futures in arrival order; every one is resolved on return.
        """
        events = list(arrivals)
        futures: List[Future] = []
        i = 0
        steps = 0
        if autoscaler is not None and autoscaler.sched is not self:
            autoscaler.attach(self)
        while True:
            now = self.clock.now_ms
            t_arr = events[i].t_ms if i < len(events) else math.inf
            busy = [w for w in self.workers if len(w.queue)]
            t_serve = min((self._start_ms(w, now) for w in busy),
                          default=math.inf)
            if math.isinf(t_arr) and not busy:
                break
            t_eval = autoscaler.next_eval_ms \
                if autoscaler is not None else math.inf
            if t_eval <= min(t_arr, t_serve):
                self.clock.advance_to(t_eval)
                autoscaler.evaluate(self.clock.now_ms)
                continue
            if t_arr <= t_serve:
                self.clock.advance_to(t_arr)
                while i < len(events) \
                        and events[i].t_ms <= self.clock.now_ms:
                    a = events[i]
                    futures.append(self.submit(
                        a.image(), deadline_ms=a.cls.deadline_ms,
                        priority=a.cls.priority,
                        session=getattr(a, "session", None),
                        end_of_session=getattr(a, "end_of_session",
                                               False)))
                    i += 1
            else:
                self.step()
                steps += 1
                if steps >= max_steps:
                    raise RuntimeError(
                        f"open-loop run exceeded {max_steps} serve steps "
                        f"({self.pending()} requests still queued)")
        if autoscaler is not None:
            autoscaler.finalize(self.clock.now_ms)
        return futures

    def _reroute_pinned(self, worker: FleetWorker, now: float) -> bool:
        """Drain a breaker-pinned worker's queue through the reroute path.

        Requests another worker can take move there; already-expired ones
        are shed; the rest stay queued for the half-open probe.  Returns
        True when anything changed (the caller re-plans instead of
        advancing the clock).
        """
        changed = False
        for r in worker.queue.shed_expired(now):
            self._reject(r, REASON_EXPIRED,
                         f"deadline {r.deadline_ms:.1f}ms passed at "
                         f"{now:.1f}ms while queued on pinned {worker.name}")
            changed = True
        kept = []
        for r in worker.queue.drain():
            target, ects = self._select(
                r.shape, now, frozenset({worker.name}) | r.failed_on,
                session=r.session)
            if target is None:
                target, ects = self._select(r.shape, now,
                                            frozenset({worker.name}),
                                            session=r.session)
            if target is None:
                kept.append(r)
                continue
            self._record_decision(r, target, ects, now)
            self._rerouted.inc(worker=worker.name)
            self._enqueue(target, r)
            changed = True
        for r in kept:
            worker.queue.push(r)
        worker._set_depth()
        return changed

    def _handle_failure(self, req: FleetRequest, worker: FleetWorker,
                        error: BaseException, now: float) -> None:
        """Retry-with-rerouting after a failed batch."""
        req.attempts += 1
        req.failed_on.add(worker.name)
        if req.expired(now):
            self._reject(req, REASON_EXPIRED,
                         f"expired during failed attempt on {worker.name}")
            return
        if req.attempts >= self.max_attempts:
            # terminal: surface the real engine error, count it as a
            # retries_exhausted drop
            if not req.future.done():
                req.future.set_exception(error)
            self._rejected.inc(reason=REASON_RETRIES)
            self._record_failure_window(req)
            self._maybe_end_session(req)
            return
        target, ects = self._select(req.shape, now,
                                    frozenset(req.failed_on),
                                    session=req.session)
        if target is None:
            # nobody else can take it — returning to a worker that failed
            # it is still better than dropping (it may now be degraded to
            # its fallback, or past its breaker cooldown)
            target, ects = self._select(req.shape, now, frozenset(),
                                        session=req.session)
        self._record_decision(req, target, ects, now)
        if target is None:
            self._reject(req, REASON_NO_WORKER,
                         f"no worker available after failure: {error}")
            return
        self._retried.inc(worker=worker.name)
        self._enqueue(target, req)

    # ------------------------------------------------------------------
    # introspection + shutdown
    # ------------------------------------------------------------------
    def explain(self, image: np.ndarray) -> List[dict]:
        """Per-worker routing view for one image — what would the router
        see *right now*?  (Does not enqueue anything.)"""
        img = np.asarray(image, dtype=np.float32)
        shape = tuple(img.shape)
        now = self.clock.now_ms
        rows = []
        for w in self.workers:
            rows.append({
                "worker": w.name,
                "device": w.spec.name if w.spec is not None else "?",
                "backend": w.backend or "?",
                "breaker": w.breaker.state,
                "degraded": w.degraded,
                "routable": w.routable(now),
                "queue_depth": len(w.queue),
                "backlog_ms": round(w.backlog_ms(now), 3),
                "predicted_ms": round(w.predict_ms(shape, 1), 3),
                "ect_ms": round(w.estimated_completion_ms(shape, now), 3),
            })
        return sorted(rows, key=lambda r: (r["ect_ms"], r["worker"]))

    def _per_label(self, counter, label: str) -> Dict[str, float]:
        return {labels.get(label, ""): counter.value(**labels)
                for labels in counter.label_sets()}

    def snapshot(self) -> dict:
        """Deterministic summary of the run (bench + tests read this)."""
        completed = self._per_label(self._completed, "worker")
        rejected = self._per_label(self._rejected, "reason")
        retried = self._per_label(self._retried, "worker")
        rerouted = self._per_label(self._rerouted, "worker")
        shard = None
        if self.shard_planner is not None:
            plans = self._per_label(self._shard_plans, "kind")
            batches = self._per_label(self._shard_batches, "kind")
            traffic = self._per_label(self._shard_traffic, "direction")
            shard = {
                "mode": self.shard_planner.mode,
                "plans_by_kind": {k: int(v)
                                  for k, v in sorted(plans.items())},
                "sharded_batches": int(sum(batches.values())),
                "sharded_batches_by_kind": {
                    k: int(v) for k, v in sorted(batches.items())},
                "traffic_bytes": {k: int(v)
                                  for k, v in sorted(traffic.items())},
                "halo_rows": int(self._shard_halo.value()),
            }
        lat = self.latencies_ms
        return {
            "sim_ms": round(self.clock.now_ms, 3),
            # makespan: when the last worker's device goes idle — the
            # denominator for fleet throughput
            "makespan_ms": round(max(w.busy_until_ms
                                     for w in self.workers), 3),
            "latency_p50_ms": round(float(np.percentile(lat, 50)), 3)
            if lat else None,
            "latency_p99_ms": round(float(np.percentile(lat, 99)), 3)
            if lat else None,
            "router": self.router.name,
            "submitted": int(self._submitted.value()),
            "completed": int(sum(completed.values())),
            "completed_by_worker": {k: int(v)
                                    for k, v in sorted(completed.items())},
            "rejected_by_reason": {k: int(v)
                                   for k, v in sorted(rejected.items())},
            "retries": int(sum(retried.values())),
            "retried_by_worker": {k: int(v)
                                  for k, v in sorted(retried.items())},
            "rerouted_by_worker": {k: int(v)
                                   for k, v in sorted(rerouted.items())},
            "sessions": {
                "active": len(self._session_affinity),
                "ended": int(self._sessions_ended.value()),
                "spills": int(sum(
                    self._per_label(self._session_spills,
                                    "worker").values())),
            },
            "shard": shard,
            "workers": [{
                "worker": w.name,
                "device": w.spec.name if w.spec is not None else "?",
                "backend": w.backend or "?",
                "breaker": w.breaker.state,
                "breaker_transitions": len(w.breaker.transitions),
                "degraded": w.degraded,
                "busy_until_ms": round(w.busy_until_ms, 3),
                "queue_depth": len(w.queue),
            } for w in self.workers],
        }

    def evaluate_slos(self, slos: Sequence[SLO]) -> List["object"]:
        """Evaluate SLO specs against this fleet's windowed metrics."""
        from repro.obs.slo import evaluate_slo

        return [evaluate_slo(slo, self.registry) for slo in slos]

    def unresolved(self) -> List[FleetRequest]:
        """Requests whose future has not resolved (must be [] after
        drain + close — the zero-lost-futures audit)."""
        return [r for r in self.requests if not r.future.done()]

    def close(self) -> None:
        """Reject everything still queued and shut the workers down."""
        if self._closed:
            return
        self._closed = True
        for w in self.workers:
            for r in w.queue.drain():
                self._reject(r, REASON_CLOSED, "fleet closed while queued")
            w._set_depth()
            w.batcher.close(flush=False)
            if w._fallback_batcher is not None:
                w._fallback_batcher.close(flush=False)

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_worker(name: str, spec, model, *, backend: str = "tex2dpp",
                 task: str = "classify", tile_store=None,
                 autotune: bool = False, execution: str = "eager",
                 max_batch_size: int = 4, queue_capacity: int = 16,
                 degrade: bool = True, breaker_threshold: int = 3,
                 breaker_cooldown_ms: float = 50.0,
                 wedge_timeout_ms: float = 100.0, injector=None,
                 registry: Optional[MetricsRegistry] = None, tracer=None,
                 **task_kwargs) -> FleetWorker:
    """Assemble one full fleet member: a DefconEngine on ``spec`` with
    its breaker and (unless degraded serving is off or the fleet already
    runs the reference backend) a lazy pytorch fallback.

    This is the per-worker body of :func:`build_fleet`, split out so the
    autoscaler's :func:`~repro.fleet.autoscale.engine_worker_provider`
    can provision identical members mid-run.  When ``registry`` is None
    the worker binds its metrics at :meth:`FleetScheduler.add_worker`.
    """
    from repro.pipeline.engine import DefconEngine

    engine = DefconEngine(model, spec, backend=backend,
                          autotune=autotune or tile_store is not None,
                          tile_store=tile_store, tracer=tracer,
                          execution=execution)
    fallback_factory = None
    if degrade and backend != "pytorch":
        fallback_factory = (
            lambda spec=spec: DefconEngine(model, spec,
                                           backend="pytorch"))
    breaker = CircuitBreaker(name, failure_threshold=breaker_threshold,
                             cooldown_ms=breaker_cooldown_ms,
                             registry=registry)
    return FleetWorker(
        name, engine, task=task, max_batch_size=max_batch_size,
        queue_capacity=queue_capacity, breaker=breaker,
        injector=injector, registry=registry, tracer=tracer,
        fallback_factory=fallback_factory,
        wedge_timeout_ms=wedge_timeout_ms, **task_kwargs)


def build_fleet(model, devices: Sequence[Union[str, object]] = ("xavier",
                                                                "2080ti"),
                *, backend: str = "tex2dpp", task: str = "classify",
                router: Union[str, Router] = "cost",
                registry: Optional[MetricsRegistry] = None, tracer=None,
                faults: Sequence[Union[str, FaultSpec]] = (),
                tile_store=None, autotune: bool = False,
                queue_capacity: int = 16, max_batch_size: int = 4,
                max_attempts: int = 3, degrade: bool = True,
                breaker_threshold: int = 3, breaker_cooldown_ms: float = 50.0,
                wedge_timeout_ms: float = 100.0, seed: int = 0,
                clock: Optional[SimClock] = None,
                execution: str = "eager",
                slo_window_ms: float = DEFAULT_SLO_WINDOW_MS,
                slo_retention: int = DEFAULT_SLO_RETENTION,
                shard: str = "off", interconnect=None,
                **task_kwargs) -> FleetScheduler:
    """Assemble a heterogeneous fleet over real DefconEngines.

    One engine per device preset (name or
    :class:`~repro.gpusim.device.DeviceSpec`), each warm-startable from a
    shared ``tile_store`` (entries are keyed per device, so every worker
    loads its own tuned tiles) and — unless ``degrade=False`` or the
    fleet already runs the reference backend — paired with a lazily built
    pytorch-backend fallback engine for graceful degradation.  Workers
    are named ``w{i}-{device}`` (the names fault specs address).

    ``execution="fused"`` turns on fused texture execution on every
    worker engine (each worker keeps its own plan cache, so plans are
    compiled per device).  The pytorch fallback engines stay eager —
    they have no fused variant.

    ``shard`` turns on intra-request parallelism: ``"cost"`` shards a
    batch whenever the interconnect-aware cost model predicts the split
    beats serving it whole, ``"always"`` is the fixed always-max-split
    baseline, ``"off"`` (default) disables sharding entirely.  With
    ``shard="cost"`` and the default cost router, routing upgrades to the
    :class:`~repro.fleet.router.ShardAwareCostRouter` so placement and
    splitting price plans with the same model.  ``interconnect``
    (a :class:`~repro.fleet.shard.Interconnect`) overrides the
    deterministic default links derived from the device presets.
    """
    from repro.gpusim.device import get_device

    registry = registry if registry is not None else MetricsRegistry()
    specs = [get_device(d) if isinstance(d, str) else d for d in devices]
    if shard not in ("off", "cost", "always"):
        raise ValueError(f"unknown shard mode {shard!r}; "
                         f"choose 'off', 'cost' or 'always'")
    shard_planner = None
    if shard != "off":
        from repro.fleet.shard import ShardPlanner, default_interconnect

        if interconnect is None:
            interconnect = default_interconnect(specs)
        shard_planner = ShardPlanner(interconnect, mode=shard)
        if shard == "cost" and router == "cost":
            router = "shard-cost"
    fault_specs = [parse_fault(f) if isinstance(f, str) else f
                   for f in faults]
    injector = FaultInjector(fault_specs, registry=registry) \
        if fault_specs else None

    workers = []
    for i, spec in enumerate(specs):
        workers.append(build_worker(
            f"w{i}-{spec.name}", spec, model, backend=backend, task=task,
            tile_store=tile_store, autotune=autotune, execution=execution,
            max_batch_size=max_batch_size, queue_capacity=queue_capacity,
            degrade=degrade, breaker_threshold=breaker_threshold,
            breaker_cooldown_ms=breaker_cooldown_ms,
            wedge_timeout_ms=wedge_timeout_ms, injector=injector,
            registry=registry, tracer=tracer, **task_kwargs))
    return FleetScheduler(workers, router=router, clock=clock,
                          registry=registry, tracer=tracer,
                          max_attempts=max_attempts, seed=seed,
                          slo_window_ms=slo_window_ms,
                          slo_retention=slo_retention,
                          shard_planner=shard_planner,
                          interconnect=interconnect)
