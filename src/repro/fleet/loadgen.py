"""Open-loop trace-driven load generation on the fleet's SimClock.

A :class:`LoadSpec` describes production-shaped traffic as a
*non-homogeneous Poisson process* over a simulated interval:

* **Poisson arrivals** — interarrival gaps are exponential, so the
  stream is open-loop: arrivals do not wait for the fleet to catch up,
  which is exactly the regime where queues grow, deadlines expire and
  autoscaling matters;
* a **diurnal rate envelope** — ``1 + amplitude * sin(...)`` over
  ``cycles`` periods, the day/night swell every consumer service sees;
* **correlated burst episodes** — multiplicative flash-crowd windows
  (``[start, end) × factor``); overlapping bursts compound;
* **multi-tenant request classes** — a weighted mix of
  :class:`RequestClass` entries with distinct geometries (image extent),
  relative deadlines and priorities.

The envelope is *normalised so it integrates to the configured request
count*: ``rate(t) = scale · diurnal(t) · burst(t)`` with ``scale``
chosen such that ``∫₀^D rate = requests`` (exact, via per-segment
analytic integration — no quadrature).  The realised arrival count is
then Poisson around ``requests``.

Everything is seeded and deterministic **across processes**: arrival
times, class draws and per-request image seeds come from one
``numpy`` PCG64 stream, so two workers generating the same spec produce
byte-identical event streams (see :meth:`LoadSpec.stream_digest` and
``tests/test_loadgen.py``).

CLI grammar (``repro fleet run --loadgen SPEC``)::

    n=400,duration=50,diurnal=0.5,cycles=2,seed=3,
    burst=10-14x4,burst=30-31x8,
    classes=small:3:16:2.0:0|large:1:32:8.0:1

``classes`` entries are
``name:weight:size[:deadline_ms[:priority[:session_frames]]]``
(deadline ``-`` = none; ``session_frames`` groups consecutive arrivals
of the class into video-stream sessions of that many frames — see
docs/streaming.md).  Unknown trailing fields are rejected with an
explicit error.  See docs/fleet.md ("Open-loop load generation").
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RequestClass:
    """One tenant class of the traffic mix."""

    name: str
    weight: float = 1.0             # relative share of the mix
    input_size: int = 32            # square (channels, s, s) images
    deadline_ms: Optional[float] = None   # relative to arrival time
    priority: int = 0               # EDF tie-break (higher serves first)
    channels: int = 3
    #: group consecutive arrivals into video-stream sessions of this many
    #: frames (None = sessionless i.i.d. traffic) — docs/streaming.md
    session_frames: Optional[int] = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"class {self.name!r}: weight must be > 0")
        if self.input_size < 4:
            raise ValueError(f"class {self.name!r}: input_size must be >= 4")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"class {self.name!r}: deadline must be > 0")
        if self.session_frames is not None and self.session_frames < 1:
            raise ValueError(
                f"class {self.name!r}: session_frames must be >= 1")


@dataclass(frozen=True)
class BurstEpisode:
    """A flash-crowd window: rate × ``factor`` over ``[start_ms, end_ms)``."""

    start_ms: float
    end_ms: float
    factor: float

    def __post_init__(self):
        if self.end_ms <= self.start_ms:
            raise ValueError(f"burst window [{self.start_ms}, {self.end_ms})"
                             " is empty")
        if self.factor <= 0:
            raise ValueError("burst factor must be > 0")

    def active(self, t_ms: float) -> bool:
        return self.start_ms <= t_ms < self.end_ms


@dataclass(frozen=True)
class Arrival:
    """One generated request: when it lands, what it asks for."""

    index: int
    t_ms: float
    cls: RequestClass
    image_seed: int
    #: video-stream membership (None for sessionless classes)
    session: Optional[str] = None
    #: last frame of its session — serving evicts session state on this
    end_of_session: bool = False

    def image(self) -> np.ndarray:
        """The deterministic payload (regenerable from ``image_seed``)."""
        rng = np.random.default_rng(self.image_seed)
        size = (self.cls.channels, self.cls.input_size, self.cls.input_size)
        return rng.uniform(0.0, 1.0, size=size).astype(np.float32)

    def stream_line(self) -> str:
        """Canonical text form (float hex — byte-exact, locale-free).

        Session fields are appended only when the arrival belongs to a
        session, so sessionless streams keep their historical byte
        digests.
        """
        deadline = ("-" if self.cls.deadline_ms is None
                    else float(self.cls.deadline_ms).hex())
        line = (f"{self.index} {float(self.t_ms).hex()} {self.cls.name} "
                f"{self.cls.input_size} {deadline} {self.cls.priority} "
                f"{self.image_seed}")
        if self.session is not None:
            line += f" {self.session} {int(self.end_of_session)}"
        return line


@dataclass(frozen=True)
class LoadSpec:
    """A normalised non-homogeneous Poisson workload description."""

    requests: int                   # expected total arrivals (envelope mass)
    duration_ms: float
    diurnal_amplitude: float = 0.0  # 0 = flat; must stay < 1 (rate > 0)
    diurnal_cycles: float = 1.0     # sine periods across the duration
    bursts: Tuple[BurstEpisode, ...] = ()
    classes: Tuple[RequestClass, ...] = (RequestClass("default"),)
    seed: int = 0

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.diurnal_cycles <= 0:
            raise ValueError("diurnal_cycles must be > 0")
        if not self.classes:
            raise ValueError("at least one request class is required")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        for b in self.bursts:
            if b.start_ms < 0 or b.end_ms > self.duration_ms:
                raise ValueError(
                    f"burst [{b.start_ms}, {b.end_ms}) outside "
                    f"[0, {self.duration_ms})")

    # ------------------------------------------------------------------
    # the rate function
    # ------------------------------------------------------------------
    def _diurnal(self, t_ms: float) -> float:
        omega = 2.0 * math.pi * self.diurnal_cycles / self.duration_ms
        return 1.0 + self.diurnal_amplitude * math.sin(omega * t_ms)

    def burst_factor(self, t_ms: float) -> float:
        f = 1.0
        for b in self.bursts:
            if b.active(t_ms):
                f *= b.factor
        return f

    def _segments(self) -> List[Tuple[float, float, float]]:
        """``(t0, t1, burst_factor)`` pieces covering ``[0, duration)``."""
        cuts = {0.0, self.duration_ms}
        for b in self.bursts:
            cuts.add(b.start_ms)
            cuts.add(b.end_ms)
        edges = sorted(cuts)
        return [(t0, t1, self.burst_factor(0.5 * (t0 + t1)))
                for t0, t1 in zip(edges, edges[1:]) if t1 > t0]

    def _envelope_mass(self) -> float:
        """``∫₀^D diurnal(t)·burst(t) dt`` — analytic per segment."""
        omega = 2.0 * math.pi * self.diurnal_cycles / self.duration_ms
        a = self.diurnal_amplitude
        mass = 0.0
        for t0, t1, f in self._segments():
            # ∫ 1 + a·sin(ωt) dt = Δt − (a/ω)(cos(ωt1) − cos(ωt0))
            mass += f * ((t1 - t0) - (a / omega)
                         * (math.cos(omega * t1) - math.cos(omega * t0)))
        return mass

    @property
    def rate_scale(self) -> float:
        """The normaliser making the envelope integrate to ``requests``."""
        return self.requests / self._envelope_mass()

    def rate(self, t_ms: float) -> float:
        """Instantaneous arrival rate (requests per simulated ms)."""
        if not 0.0 <= t_ms < self.duration_ms:
            return 0.0
        return self.rate_scale * self._diurnal(t_ms) * self.burst_factor(t_ms)

    def peak_rate(self) -> float:
        """An upper bound on ``rate`` (the thinning envelope λ_max)."""
        worst = max((f for _, _, f in self._segments()), default=1.0)
        return self.rate_scale * (1.0 + self.diurnal_amplitude) * worst

    @property
    def offered_rpms(self) -> float:
        """Mean offered load, requests per simulated ms."""
        return self.requests / self.duration_ms

    def scaled(self, factor: float) -> "LoadSpec":
        """Same traffic shape at ``factor`` × the offered load."""
        if factor <= 0:
            raise ValueError("load factor must be > 0")
        return replace(self, requests=max(1, int(round(self.requests
                                                       * factor))))

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def events(self) -> List[Arrival]:
        """Generate the arrival stream (Lewis–Shedler thinning).

        Gaps are drawn exponentially at ``peak_rate`` and accepted with
        probability ``rate(t)/peak_rate`` — an exact non-homogeneous
        Poisson sampler.  One seeded PCG64 stream drives gaps, thinning,
        class draws and image seeds, so identical specs yield
        byte-identical streams in any process.

        Classes with ``session_frames`` chop their consecutive arrivals
        into fixed-length video sessions (``<name>-s<k>``) with the last
        frame of each session flagged ``end_of_session`` — assigned from
        per-class counters after the draws, so sessionised specs consume
        exactly the same random stream as sessionless ones.
        """
        rng = np.random.default_rng(self.seed)
        lam = self.peak_rate()
        weights = np.cumsum([c.weight for c in self.classes])
        weights = weights / weights[-1]
        out: List[Arrival] = []
        counts = {c.name: 0 for c in self.classes}
        t = 0.0
        while True:
            t += rng.exponential(1.0 / lam)
            if t >= self.duration_ms:
                break
            if rng.random() * lam > self.rate(t):
                continue                      # thinned away
            cls = self.classes[int(np.searchsorted(weights, rng.random(),
                                                   side="right"))]
            session, last = None, False
            if cls.session_frames is not None:
                i = counts[cls.name]
                counts[cls.name] = i + 1
                session = f"{cls.name}-s{i // cls.session_frames}"
                last = (i % cls.session_frames == cls.session_frames - 1)
            out.append(Arrival(len(out), float(t), cls,
                               int(rng.integers(0, 2 ** 32)),
                               session=session, end_of_session=last))
        # A truncated final session still ends: flag each sessionised
        # class's last arrival so serving releases its state.
        tail = {}
        for pos, a in enumerate(out):
            if a.session is not None:
                tail[a.cls.name] = pos
        for pos in tail.values():
            out[pos] = replace(out[pos], end_of_session=True)
        return out

    def stream_bytes(self, events: Optional[Sequence[Arrival]] = None
                     ) -> bytes:
        """Canonical byte serialisation of the event stream."""
        if events is None:
            events = self.events()
        return "\n".join(a.stream_line() for a in events).encode("ascii")

    def stream_digest(self, events: Optional[Sequence[Arrival]] = None
                      ) -> str:
        """blake2b digest of :meth:`stream_bytes` (determinism audits)."""
        return hashlib.blake2b(self.stream_bytes(events),
                               digest_size=16).hexdigest()

    def describe(self) -> str:
        parts = [f"{self.requests} req over {self.duration_ms:g} sim-ms "
                 f"({self.offered_rpms:.2f} req/ms)"]
        if self.diurnal_amplitude:
            parts.append(f"diurnal ±{self.diurnal_amplitude:g} "
                         f"× {self.diurnal_cycles:g} cycles")
        for b in self.bursts:
            parts.append(f"burst [{b.start_ms:g}, {b.end_ms:g})"
                         f" ×{b.factor:g}")
        parts.append("classes " + "/".join(c.name for c in self.classes))
        return ", ".join(parts)


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
_CLASS_GRAMMAR = "name:weight:size[:deadline_ms[:priority[:session_frames]]]"


def _parse_class(token: str) -> RequestClass:
    fields = token.split(":")
    if len(fields) > 6:
        raise ValueError(
            f"bad class {token!r}: unknown trailing fields "
            f"{fields[6:]!r} — the grammar is {_CLASS_GRAMMAR}")
    if len(fields) < 2 or not fields[0]:
        raise ValueError(
            f"bad class {token!r}; expected {_CLASS_GRAMMAR}")
    name, weight = fields[0], float(fields[1])
    size = int(fields[2]) if len(fields) > 2 else 32
    deadline = None
    if len(fields) > 3 and fields[3] not in ("-", ""):
        deadline = float(fields[3])
    priority = int(fields[4]) if len(fields) > 4 else 0
    session_frames = None
    if len(fields) > 5 and fields[5] not in ("-", ""):
        session_frames = int(fields[5])
    return RequestClass(name, weight, size, deadline, priority,
                        session_frames=session_frames)


def _parse_burst(token: str) -> BurstEpisode:
    try:
        window, factor = token.split("x")
        start, end = window.split("-")
        return BurstEpisode(float(start), float(end), float(factor))
    except ValueError as exc:
        raise ValueError(f"bad burst {token!r}; expected START-ENDxFACTOR "
                         f"(e.g. 10-14x4)") from exc


def parse_loadgen(spec: str) -> LoadSpec:
    """Parse the ``--loadgen`` grammar into a :class:`LoadSpec`."""
    kwargs = {"requests": 64, "duration_ms": 32.0}
    bursts: List[BurstEpisode] = []
    classes: Optional[Tuple[RequestClass, ...]] = None
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"bad loadgen token {token!r}; expected key=value")
        key, value = token.split("=", 1)
        key = key.strip().lower()
        if key in ("n", "requests"):
            kwargs["requests"] = int(value)
        elif key == "duration":
            kwargs["duration_ms"] = float(value)
        elif key == "diurnal":
            kwargs["diurnal_amplitude"] = float(value)
        elif key == "cycles":
            kwargs["diurnal_cycles"] = float(value)
        elif key == "seed":
            kwargs["seed"] = int(value)
        elif key == "burst":
            bursts.append(_parse_burst(value))
        elif key == "classes":
            classes = tuple(_parse_class(tok)
                            for tok in value.split("|") if tok)
        else:
            raise ValueError(
                f"unknown loadgen key {key!r}; known: n/requests, duration, "
                f"diurnal, cycles, seed, burst, classes")
    if bursts:
        kwargs["bursts"] = tuple(bursts)
    if classes:
        kwargs["classes"] = classes
    return LoadSpec(**kwargs)
