"""Elastic autoscaling: grow and shrink the fleet against live SLO burn.

The :class:`ElasticAutoscaler` rides the fleet's synchronous simulation:
:meth:`FleetScheduler.run_load` calls :meth:`evaluate` every
``interval_ms`` of simulated time, and each evaluation may

* **scale up** — provision one worker from the
  :mod:`repro.gpusim.device` preset catalogue when the windowed
  p99-vs-SLO **burn rate** (the same
  :func:`repro.obs.slo.evaluate_slo` machinery ``repro fleet run
  --slo`` prints) or the mean **queue depth** per worker crosses its
  threshold.  A burn-triggered upscale picks the *fastest* catalogue
  class, a depth-triggered one the *cheapest* — the accelerator-
  partitioning trade-off at fleet granularity.  The new worker pays a
  **warm-up cost** before its timeline accepts dispatch: a device class
  the autoscaler has provisioned before warm-starts from its tile store
  (``warm_ms``), a first-ever class pays the cold autotune
  (``cold_ms``); until ``ready_at_ms`` the worker is not routable.
* **scale down** — after ``down_intervals`` consecutive healthy
  evaluations, mark the youngest worker **draining**: it takes no new
  routing, serves out its queue, and is only removed from the scheduler
  once idle — the zero-lost-futures invariant survives elasticity.

``min_workers``/``max_workers`` bound the active (non-draining) count
at all times, cooldowns damp flapping, and every action lands in
:attr:`events` plus ``fleet_autoscale_actions`` on the registry.  The
worker **ledger** records each member's provision/retire times, so
:meth:`worker_ms` prices the run in worker-milliseconds — the
worker-hours axis of ``benchmarks/bench_fleet_autoscale.py``'s
SLO-attainment curves.

Policy grammar (``repro fleet run --autoscale POLICY``)::

    min=1,max=4,catalogue=xavier|2080ti,p99=0.5,burn=1.0,depth=4,
    interval=1.0,warm=1,cold=6,up-cooldown=2,down-cooldown=4,settle=3

See docs/fleet.md ("Elastic autoscaling").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.fleet.worker import FleetWorker
from repro.obs.slo import SLO, evaluate_slo

#: builds one fleet member for a device preset: ``(name, spec) → worker``
WorkerProvider = Callable[[str, "object"], FleetWorker]


@dataclass(frozen=True)
class AutoscalePolicy:
    """When to grow, when to shrink, and what each move costs."""

    min_workers: int = 1
    max_workers: int = 4
    #: device presets the autoscaler may provision, ordered cheap → fast
    catalogue: Tuple[str, ...] = ("xavier",)
    #: p99 threshold (sim ms) of the SLO whose burn rate drives upscaling
    p99_ms: float = 0.5
    #: scale up when the 1-window burn rate exceeds this (1.0 = burning
    #: budget exactly as fast as the SLO allows)
    burn_up: float = 1.0
    #: ... or when mean queued requests per active worker exceeds this
    depth_up: float = 4.0
    #: scale down only while burn and depth sit below the quiet line
    burn_down: float = 0.25
    depth_down: float = 0.5
    #: consecutive quiet evaluations required before a scale-down
    down_intervals: int = 3
    #: evaluation cadence on the simulated clock
    interval_ms: float = 1.0
    up_cooldown_ms: float = 2.0
    down_cooldown_ms: float = 4.0
    #: ready-delay for a device class whose tiles are already warm
    warm_ms: float = 1.0
    #: ready-delay for a first-ever device class (cold autotune)
    cold_ms: float = 6.0

    def __post_init__(self):
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if not self.catalogue:
            raise ValueError("the device catalogue cannot be empty")
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be > 0")
        if self.warm_ms < 0 or self.cold_ms < 0:
            raise ValueError("warm-up delays must be >= 0")
        if self.down_intervals < 1:
            raise ValueError("down_intervals must be >= 1")

    @property
    def slo(self) -> SLO:
        """The p99 objective whose burn rate triggers upscaling."""
        return SLO(name="autoscale-p99",
                   metric="fleet_request_latency_ms",
                   objective="quantile", quantile=99.0,
                   threshold_ms=self.p99_ms)


def parse_autoscale(spec: str) -> AutoscalePolicy:
    """Parse the ``--autoscale`` grammar into an :class:`AutoscalePolicy`."""
    keys = {
        "min": ("min_workers", int),
        "max": ("max_workers", int),
        "p99": ("p99_ms", float),
        "burn": ("burn_up", float),
        "burn-down": ("burn_down", float),
        "depth": ("depth_up", float),
        "depth-down": ("depth_down", float),
        "interval": ("interval_ms", float),
        "up-cooldown": ("up_cooldown_ms", float),
        "down-cooldown": ("down_cooldown_ms", float),
        "settle": ("down_intervals", int),
        "warm": ("warm_ms", float),
        "cold": ("cold_ms", float),
    }
    kwargs: Dict[str, object] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"bad autoscale token {token!r}; "
                             f"expected key=value")
        key, value = token.split("=", 1)
        key = key.strip().lower()
        if key == "catalogue":
            kwargs["catalogue"] = tuple(d for d in value.split("|") if d)
        elif key in keys:
            field_name, cast = keys[key]
            kwargs[field_name] = cast(value)
        else:
            raise ValueError(f"unknown autoscale key {key!r}; known: "
                             f"{sorted(list(keys) + ['catalogue'])}")
    return AutoscalePolicy(**kwargs)


class ElasticAutoscaler:
    """Drive fleet membership from queue depth and windowed SLO burn."""

    def __init__(self, policy: AutoscalePolicy, provider: WorkerProvider):
        self.policy = policy
        self.provider = provider
        #: every action, in order: scale-up / scale-down / remove rows
        self.events: List[dict] = []
        #: name → {device, added_ms, ready_ms, removed_ms} for every
        #: worker that was ever a member (worker-hours accounting)
        self.ledger: Dict[str, dict] = {}
        #: device classes provisioned before → tile store is warm
        self._warm_devices: set = set()
        self._next_eval = 0.0
        self._last_up = -math.inf
        self._last_down = -math.inf
        self._quiet_streak = 0
        self._seq = 0
        self.sched = None
        self._actions = None
        self._active_gauge = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, sched) -> "ElasticAutoscaler":
        """Bind to a scheduler and enrol its current workers."""
        self.sched = sched
        now = sched.clock.now_ms
        self._next_eval = now
        for w in sched.workers:
            self.ledger.setdefault(w.name, {
                "device": w.spec.name if w.spec is not None else "?",
                "added_ms": now, "ready_ms": now, "removed_ms": None,
            })
            if w.spec is not None:
                # the fleet's initial members already carry tuned tiles
                self._warm_devices.add(w.spec.name)
        self._actions = sched.registry.counter(
            "fleet_autoscale_actions",
            help="autoscaler decisions by action (scale-up/scale-down/"
                 "remove)")
        self._active_gauge = sched.registry.gauge(
            "fleet_active_workers",
            help="non-draining fleet members at the last evaluation")
        self._active_gauge.set(len(self._active()))
        return self

    @property
    def next_eval_ms(self) -> float:
        return self._next_eval

    def _active(self) -> List[FleetWorker]:
        return [w for w in self.sched.workers if not w.draining]

    # ------------------------------------------------------------------
    # the control loop
    # ------------------------------------------------------------------
    def burn_1w(self) -> float:
        """Burn rate over the most recent retained SLO window."""
        report = evaluate_slo(self.policy.slo, self.sched.registry)
        return report.burn_rates.get("1w", 0.0)

    def evaluate(self, now_ms: float) -> None:
        """One control step: finish drains, then grow or shrink."""
        if self.sched is None:
            raise RuntimeError("attach() the autoscaler to a fleet first")
        pol = self.policy
        self._next_eval = now_ms + pol.interval_ms
        self._finish_drains(now_ms)
        active = self._active()
        depth = self.sched.pending() / max(1, len(active))
        burn = self.burn_1w()

        reason = None
        if burn > pol.burn_up:
            reason = "burn"
        elif depth > pol.depth_up:
            reason = "depth"
        if reason is not None:
            self._quiet_streak = 0
            if (len(active) < pol.max_workers
                    and now_ms - self._last_up >= pol.up_cooldown_ms):
                self._scale_up(now_ms, reason, burn, depth)
        elif burn <= pol.burn_down and depth <= pol.depth_down:
            self._quiet_streak += 1
            if (self._quiet_streak >= pol.down_intervals
                    and len(active) > pol.min_workers
                    and now_ms - self._last_down >= pol.down_cooldown_ms):
                self._scale_down(now_ms, burn, depth)
                self._quiet_streak = 0
        else:
            self._quiet_streak = 0
        self._active_gauge.set(len(self._active()))

    def _scale_up(self, now_ms: float, reason: str, burn: float,
                  depth: float) -> None:
        from repro.gpusim.device import get_device

        pol = self.policy
        # burn says the tail is on fire — buy the fastest class; a pure
        # depth backlog is cleared by the cheapest
        device = pol.catalogue[-1] if reason == "burn" else pol.catalogue[0]
        spec = get_device(device)
        warm = spec.name in self._warm_devices
        delay = pol.warm_ms if warm else pol.cold_ms
        name = f"a{self._seq}-{spec.name}"
        self._seq += 1
        worker = self.provider(name, spec)
        worker.ready_at_ms = now_ms + delay
        worker.busy_until_ms = max(worker.busy_until_ms, worker.ready_at_ms)
        self.sched.add_worker(worker)
        self._warm_devices.add(spec.name)
        self._last_up = now_ms
        self.ledger[name] = {"device": spec.name, "added_ms": now_ms,
                             "ready_ms": worker.ready_at_ms,
                             "removed_ms": None}
        self._record(now_ms, "scale-up", name, device=spec.name,
                     reason=reason, warm=warm,
                     ready_ms=round(worker.ready_at_ms, 3),
                     burn_1w=round(burn, 3), depth=round(depth, 3))

    def _scale_down(self, now_ms: float, burn: float, depth: float) -> None:
        # retire the youngest member (LIFO keeps the long-lived base
        # fleet stable); ties broken by name for determinism
        victim = max(self._active(),
                     key=lambda w: (self.ledger[w.name]["added_ms"], w.name))
        victim.draining = True
        self.ledger[victim.name]["drain_ms"] = now_ms
        self._last_down = now_ms
        self._record(now_ms, "scale-down", victim.name,
                     device=self.ledger[victim.name]["device"],
                     reason="quiet", queued=len(victim.queue),
                     burn_1w=round(burn, 3), depth=round(depth, 3))

    def _finish_drains(self, now_ms: float) -> None:
        """Retire draining workers whose queue emptied and device idled."""
        for w in list(self.sched.workers):
            if not w.draining or len(w.queue):
                continue
            if w.busy_until_ms > now_ms:
                continue
            self._retire(w, self._retire_ms(w))

    def _retire_ms(self, worker: FleetWorker) -> float:
        """A drained worker is billed until it finished its last batch or
        the drain was ordered, whichever came later."""
        row = self.ledger[worker.name]
        return max(worker.busy_until_ms,
                   row.get("drain_ms", row["added_ms"]))

    def _retire(self, worker: FleetWorker, at_ms: float) -> None:
        self.sched.remove_worker(worker.name)
        self.ledger[worker.name]["removed_ms"] = at_ms
        self._record(at_ms, "remove", worker.name,
                     device=self.ledger[worker.name]["device"])

    def _record(self, now_ms: float, action: str, worker: str,
                **detail) -> None:
        self.events.append({"sim_ms": round(now_ms, 3), "action": action,
                            "worker": worker, **detail})
        if self._actions is not None:
            self._actions.inc(action=action)

    def finalize(self, end_ms: float) -> None:
        """End-of-run accounting: retire every drained worker."""
        for w in list(self.sched.workers):
            if w.draining and not len(w.queue):
                self._retire(w, self._retire_ms(w))
        self._active_gauge.set(len(self._active()))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def worker_ms(self, end_ms: float) -> float:
        """Total provisioned worker-milliseconds (the fleet's cost axis)."""
        total = 0.0
        for row in self.ledger.values():
            stop = row["removed_ms"] if row["removed_ms"] is not None \
                else max(end_ms, row["added_ms"])
            total += stop - row["added_ms"]
        return total

    def concurrency_bounds(self) -> Tuple[int, int]:
        """(min, max) concurrent members over the whole run, from the
        ledger boundary sweep (the flash-crowd bounds audit)."""
        edges = []
        for row in self.ledger.values():
            edges.append((row["added_ms"], 1))
            if row["removed_ms"] is not None:
                edges.append((row["removed_ms"], -1))
        level = 0
        lo, hi = math.inf, 0
        for _, delta in sorted(edges, key=lambda e: (e[0], -e[1])):
            level += delta
            lo, hi = min(lo, level), max(hi, level)
        return (0 if lo is math.inf else lo), hi

    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e["action"] == "scale-up")

    def scale_downs(self) -> int:
        return sum(1 for e in self.events if e["action"] == "scale-down")

    def snapshot(self, end_ms: Optional[float] = None) -> dict:
        """Deterministic summary (bench + CLI read this)."""
        end = end_ms if end_ms is not None else self.sched.clock.now_ms
        lo, hi = self.concurrency_bounds()
        return {
            "policy": {"min": self.policy.min_workers,
                       "max": self.policy.max_workers,
                       "catalogue": list(self.policy.catalogue),
                       "p99_ms": self.policy.p99_ms},
            "scale_ups": self.scale_ups(),
            "scale_downs": self.scale_downs(),
            "peak_workers": hi,
            "min_workers_seen": lo,
            "final_workers": len(self.sched.workers),
            "worker_ms": round(self.worker_ms(end), 3),
            "events": list(self.events),
        }


# ----------------------------------------------------------------------
# worker providers
# ----------------------------------------------------------------------
class _SimServeEngine:
    """Deterministic classify stub for simulation-only fleets: results
    are byte-stable per batch, no numerics run — the worker's sim time
    comes from its injected gpusim-priced predictor instead."""

    def __init__(self):
        self.batches = 0

    def classify(self, images):
        import numpy as np

        self.batches += 1
        return np.arange(images.shape[0], dtype=np.int64)


def sim_worker_provider(*, layer=None, backend: str = "tex2dpp",
                        max_batch_size: int = 4, queue_capacity: int = 64,
                        tracer=None) -> WorkerProvider:
    """Workers with stub engines but *real* gpusim-priced latency.

    Each provisioned worker predicts (and is charged) the
    :func:`repro.nas.latency_table.deform_latency_ms` of ``layer`` on its
    device preset, scaled by the request's pixel count and batch size —
    so the autoscaler's catalogue trade-off (cheap Xavier vs fast
    2080 Ti) is priced by the same latency model the cost router uses,
    while serving stays fast enough for load sweeps.
    """
    from repro.kernels.config import LayerConfig

    cfg = layer if layer is not None else LayerConfig(64, 64, 32, 32)
    base_ms: Dict[str, float] = {}

    def provider(name: str, spec) -> FleetWorker:
        from repro.gpusim.device import get_device
        from repro.nas.latency_table import deform_latency_ms

        spec = get_device(spec) if isinstance(spec, str) else spec
        if spec.name not in base_ms:
            base_ms[spec.name] = deform_latency_ms(cfg, spec,
                                                   backend=backend)
        per_image = base_ms[spec.name]
        ref_pixels = float(cfg.height * cfg.width)

        def predictor(shape, batch, per_image=per_image):
            pixels = float(shape[-1] * shape[-2])
            return per_image * batch * pixels / ref_pixels

        worker = FleetWorker(name, _SimServeEngine(), predictor=predictor,
                             max_batch_size=max_batch_size,
                             queue_capacity=queue_capacity, tracer=tracer)
        worker.spec = spec          # routable introspection keeps the name
        return worker

    return provider


def engine_worker_provider(model, *, backend: str = "tex2dpp",
                           task: str = "classify", tile_store=None,
                           autotune: bool = False,
                           execution: str = "eager",
                           max_batch_size: int = 4,
                           queue_capacity: int = 16,
                           degrade: bool = True,
                           breaker_threshold: int = 3,
                           breaker_cooldown_ms: float = 50.0,
                           wedge_timeout_ms: float = 100.0,
                           injector=None, tracer=None,
                           **task_kwargs) -> WorkerProvider:
    """Workers with full :class:`~repro.pipeline.engine.DefconEngine`
    stacks — what ``repro fleet run --autoscale`` provisions (same
    assembly as :func:`~repro.fleet.scheduler.build_fleet`)."""

    def provider(name: str, spec) -> FleetWorker:
        from repro.fleet.scheduler import build_worker
        from repro.gpusim.device import get_device

        spec = get_device(spec) if isinstance(spec, str) else spec
        return build_worker(name, spec, model, backend=backend, task=task,
                            tile_store=tile_store, autotune=autotune,
                            execution=execution,
                            max_batch_size=max_batch_size,
                            queue_capacity=queue_capacity, degrade=degrade,
                            breaker_threshold=breaker_threshold,
                            breaker_cooldown_ms=breaker_cooldown_ms,
                            wedge_timeout_ms=wedge_timeout_ms,
                            injector=injector, tracer=tracer,
                            **task_kwargs)

    return provider
