"""Bounded per-worker queues with deadlines, EDF dequeue and load shedding.

Every fleet request carries an optional *absolute* deadline on the
scheduler's simulated clock.  The queue enforces the robustness rules a
real serving tier needs:

* **admission control / backpressure** — the queue is bounded; a push
  beyond ``capacity`` raises :class:`FleetRejection` with reason
  ``queue_full`` instead of growing without bound, and the caller
  propagates that rejection to the request's future;
* **earliest-deadline-first dequeue** — :meth:`pop_batch` serves the
  request whose deadline is nearest (ties broken by request id, so the
  order is total and deterministic), batching only same-shaped requests
  with it;
* **load shedding** — :meth:`shed_expired` removes requests whose
  deadline has already passed so the fleet never spends device time on
  work nobody is still waiting for; shed requests are returned to the
  caller, which must resolve their futures with an explicit rejection
  (no future is ever silently dropped).
"""

from __future__ import annotations

import math
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

#: rejection reasons (the ``reason`` label on ``fleet_requests_rejected``)
REASON_QUEUE_FULL = "queue_full"
REASON_EXPIRED = "deadline_expired"
REASON_NO_WORKER = "no_worker_available"
REASON_RETRIES = "retries_exhausted"
REASON_CLOSED = "fleet_closed"


class FleetRejection(RuntimeError):
    """Explicit, reasoned rejection of a request (admission control, load
    shedding, retry exhaustion...).  Set on the request's future, so a
    rejected request still *resolves* — callers always get an answer."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        msg = reason if not detail else f"{reason}: {detail}"
        super().__init__(msg)


@dataclass
class FleetRequest:
    """One image travelling through the fleet, with its promise."""

    id: int
    image: np.ndarray                       # (C, H, W)
    submit_ms: float                        # simulated submission time
    deadline_ms: Optional[float] = None     # absolute sim-time deadline
    future: Future = field(default_factory=Future)
    #: per-request predicted service time on the worker currently holding
    #: it (set at enqueue time; feeds the queue's backlog estimate)
    predicted_ms: float = 0.0
    attempts: int = 0
    #: workers that already failed this request (rerouting avoids them)
    failed_on: Set[str] = field(default_factory=set)
    #: multi-tenant priority class (higher serves first among equal
    #: deadlines; a pure-priority order would starve, so the deadline
    #: stays the primary key)
    priority: int = 0
    #: video-stream session this frame belongs to (None = sessionless);
    #: the scheduler routes a session's frames to one sticky worker so
    #: its plan-cache anchor stays hot (docs/streaming.md)
    session: Optional[str] = None
    #: last frame of the session — resolving it evicts session state
    end_of_session: bool = False

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.image.shape)

    @property
    def edf_key(self) -> Tuple[float, int, int]:
        """Total EDF order: nearest deadline first, then priority (higher
        first), then submission order."""
        deadline = self.deadline_ms if self.deadline_ms is not None \
            else math.inf
        return (deadline, -self.priority, self.id)

    def expired(self, now_ms: float) -> bool:
        return self.deadline_ms is not None and now_ms > self.deadline_ms


class BoundedDeadlineQueue:
    """A bounded request queue with EDF dequeue and expiry shedding.

    Not thread-safe by itself — the fleet scheduler is a synchronous
    event-driven simulation, which is what makes routing decisions and
    metrics bit-stable under a fixed seed.
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._reqs: List[FleetRequest] = []

    def __len__(self) -> int:
        return len(self._reqs)

    @property
    def full(self) -> bool:
        return len(self._reqs) >= self.capacity

    @property
    def pending_ms(self) -> float:
        """Predicted service time of everything queued (backlog input to
        the router's expected-completion-time estimate)."""
        return sum(r.predicted_ms for r in self._reqs)

    def push(self, req: FleetRequest) -> None:
        if self.full:
            raise FleetRejection(
                REASON_QUEUE_FULL,
                f"queue at capacity {self.capacity}")
        self._reqs.append(req)

    def shed_expired(self, now_ms: float) -> List[FleetRequest]:
        """Remove and return every request whose deadline already passed."""
        expired = [r for r in self._reqs if r.expired(now_ms)]
        if expired:
            self._reqs = [r for r in self._reqs if not r.expired(now_ms)]
        return sorted(expired, key=lambda r: r.edf_key)

    def pop_batch(self, max_batch: int) -> List[FleetRequest]:
        """Pop the EDF head plus up to ``max_batch - 1`` same-shaped
        requests, in EDF order (only same shapes stack into one tensor)."""
        if not self._reqs:
            return []
        ordered = sorted(self._reqs, key=lambda r: r.edf_key)
        head = ordered[0]
        batch = [head]
        for r in ordered[1:]:
            if len(batch) >= max_batch:
                break
            if r.shape == head.shape:
                batch.append(r)
        taken = {r.id for r in batch}
        self._reqs = [r for r in self._reqs if r.id not in taken]
        return batch

    def drain(self) -> List[FleetRequest]:
        """Remove and return everything (fleet shutdown path)."""
        reqs, self._reqs = self._reqs, []
        return sorted(reqs, key=lambda r: r.edf_key)
