"""Routing policies: cost-model, round-robin and random placement.

The cost-model router operationalises the paper's per-device latency
model at serving time: for every candidate worker it computes an

    expected completion time (ECT)
        = current backlog (busy device time still owed + predicted
          service time of everything already queued)
        + predicted service time of the new request on *that* device

and places the request on the worker with the smallest ECT (ties broken
by worker name, so decisions are deterministic).  Predicted service
times come from :class:`EngineCostModel`, which walks the model's
deformable sites through the same gpusim cost path the NAS latency table
(Eq. 6) uses — per device, per backend, per geometry — and memoises each
(shape, batch) query.

Round-robin and random placement are the baselines the fleet bench
compares against; on a heterogeneous fleet they waste the fast device by
construction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: predicted service milliseconds for (image shape, batch size)
Predictor = Callable[[Tuple[int, ...], int], float]


class EngineCostModel:
    """Predict per-device deformable latency for a DefconEngine's model.

    For every deformable site of the engine's model (the same candidate
    sites the autotuner walks) the predictor runs the gpusim latency path
    — :func:`repro.nas.latency_table.deform_latency_ms` — on this
    worker's device and backend, scaling the nominal site geometry to the
    request's image extent.  Results are memoised per (shape, batch), so
    steady-state routing costs a dict lookup.
    """

    #: the shard planner checks this before passing ``shard=`` descriptors
    supports_shards = True

    def __init__(self, engine, backend: Optional[str] = None):
        from repro.deform.layers import DeformConv2d

        self.spec = engine.spec
        self.backend = backend if backend is not None else engine.backend
        model = engine.model
        backbone = getattr(model, "backbone", None)
        self._sites = []
        if backbone is not None and hasattr(backbone, "candidate_sites"):
            for spec_site, mod in backbone.candidate_sites():
                if isinstance(mod, DeformConv2d):
                    self._sites.append(spec_site.layer_config())
        self._nominal = getattr(model, "input_size",
                                getattr(backbone, "input_size", None))
        #: (shape, batch, shard descriptor | None) → predicted ms.  The
        #: shard descriptor is part of the key so a split-layer prediction
        #: can never collide with (or be served as) a whole-layer one.
        self._cache: Dict[Tuple[Tuple[int, ...], int, Optional[tuple]],
                          float] = {}
        self._site_cache: Dict[Tuple[Tuple[int, ...], int], list] = {}
        self._split_cache: Dict[Tuple[Tuple[int, ...], int],
                                List[Tuple[float, float]]] = {}
        self._shard_site_cache: Dict[tuple,
                                     List[Tuple[float, float]]] = {}

    def site_configs(self, shape: Tuple[int, ...], batch: int = 1) -> list:
        """The model's deformable sites scaled to this request's extent."""
        key = (tuple(shape), int(batch))
        cached = self._site_cache.get(key)
        if cached is not None:
            return cached
        scale = 1.0
        if self._nominal and len(shape) == 3:
            scale = shape[-1] / float(self._nominal)
        cfgs = [replace(cfg,
                        height=max(4, int(round(cfg.height * scale))),
                        width=max(4, int(round(cfg.width * scale))),
                        batch=batch)
                for cfg in self._sites]
        self._site_cache[key] = cfgs
        return cfgs

    def site_split_ms(self, shape: Tuple[int, ...],
                      batch: int = 1) -> List[Tuple[float, float]]:
        """Per-site (sampling ms, GEMM ms) on this device and backend.

        The shard planner prices a split from the halves: the sampling
        kernel divides across shard workers while the GEMM stays whole at
        the stitch.  A model with no deformable sites prices as one
        pseudo-site of ``float(batch)`` sampling ms (matching the
        whole-layer fallback).
        """
        from repro.nas.latency_table import deform_latency_split_ms

        key = (tuple(shape), int(batch))
        cached = self._split_cache.get(key)
        if cached is not None:
            return cached
        if not self._sites:
            splits = [(float(batch), 0.0)]
        else:
            splits = [deform_latency_split_ms(cfg, self.spec,
                                              backend=self.backend)
                      for cfg in self.site_configs(shape, batch)]
        self._split_cache[key] = splits
        return splits

    def shard_site_ms(self, shape: Tuple[int, ...], batch: int, kind: str,
                      nums: Tuple[int, ...],
                      index: int) -> List[Tuple[float, float]]:
        """Per-site (sampling ms, GEMM ms) of *this worker's* shard.

        ``nums`` are the plan's integer band weights and ``index`` this
        worker's position; the shard bounds per site come from the same
        :func:`~repro.kernels.shards.band_bounds` rounding the executor
        uses, and each shard is priced by actually running
        :func:`~repro.kernels.shards.run_shard` on synthetic offsets
        (:func:`~repro.nas.latency_table.deform_shard_latency_split_ms`)
        — exact launch grids, not fraction-scaled approximations.  Sites
        where this worker's band rounds empty price as (0, 0).
        """
        from repro.kernels.shards import ShardSpec, band_bounds
        from repro.nas.latency_table import deform_shard_latency_split_ms

        key = (tuple(shape), int(batch), str(kind), tuple(nums), int(index))
        cached = self._shard_site_cache.get(key)
        if cached is not None:
            return cached
        out: List[Tuple[float, float]] = []
        for cfg in self.site_configs(shape, batch):
            total = (cfg.out_height if kind == "rows"
                     else cfg.in_channels // max(1, cfg.deformable_groups))
            lo, hi = band_bounds(total, nums)[index]
            if hi <= lo:
                out.append((0.0, 0.0))
                continue
            shard = ShardSpec(kind, index, len(nums), lo, hi)
            out.append(deform_shard_latency_split_ms(
                cfg, self.spec, shard, backend=self.backend))
        self._shard_site_cache[key] = out
        return out

    def __call__(self, shape: Tuple[int, ...], batch: int = 1,
                 shard: Optional[tuple] = None) -> float:
        """Predicted ms for (shape, batch), optionally for one shard of it.

        ``shard`` descriptors (all hashable, all part of the memo key):

        * ``None`` — the whole model, sampling + GEMM (the original ECT
          predictor);
        * ``("rows"|"channels", num, den)`` — the ``num/den`` fraction of
          every site's sampling *and* GEMM (a shard worker computes its
          band's gather/blend plus its own slice of the contraction);
        * ``("stage", lo, hi)`` — sites ``[lo, hi)`` whole (one pipeline
          stage).
        """
        if shard is not None:
            shard = tuple(shard)
        key = (tuple(shape), int(batch), shard)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        splits = self.site_split_ms(shape, batch)
        if shard is None:
            ms = sum(s + g for s, g in splits)
        elif shard[0] in ("rows", "channels"):
            _, num, den = shard
            ms = sum(s + g for s, g in splits) * (num / float(den))
        elif shard[0] == "stage":
            _, lo, hi = shard
            ms = sum(s + g for s, g in splits[int(lo):int(hi)])
        else:
            raise ValueError(f"unknown shard descriptor {shard!r}")
        self._cache[key] = ms
        return ms


class Router:
    """Pick a worker for one request among the routable candidates."""

    name = "base"

    def choose(self, candidates: Sequence["FleetWorker"],  # noqa: F821
               shape: Tuple[int, ...], now_ms: float):
        raise NotImplementedError

    def ect_table(self, candidates, shape: Tuple[int, ...],
                  now_ms: float) -> Dict[str, float]:
        """Expected completion time per candidate (for observability —
        every policy records it so routing decisions stay inspectable)."""
        return {w.name: w.estimated_completion_ms(shape, now_ms)
                for w in candidates}


class CostModelRouter(Router):
    """Lowest expected completion time wins (ties by worker name)."""

    name = "cost"

    def choose(self, candidates, shape, now_ms):
        return min(candidates,
                   key=lambda w: (w.estimated_completion_ms(shape, now_ms),
                                  w.name))


class ShardAwareCostRouter(CostModelRouter):
    """Cost routing over a plan space that includes sharded splits.

    With a bound :class:`~repro.fleet.shard.ShardPlanner` the router
    prices every plan the planner can emit for this request — single
    workers, row-band and channel-group splits, pipeline stages — and
    places the request on the cheapest plan's *coordinator* (the split
    itself is resolved again at serve time against live device
    timelines).  ``ect_table`` carries the sharded plan rows alongside
    the per-worker ECTs (``plan:<label>`` keys), so the ``repro fleet
    plan`` view and the bench decision table show exactly what the
    router compared.  Unbound (``planner=None``) it degrades to plain
    cost routing.
    """

    name = "shard-cost"

    def __init__(self, planner=None):
        self.planner = planner

    def bind_planner(self, planner) -> "ShardAwareCostRouter":
        self.planner = planner
        return self

    def choose(self, candidates, shape, now_ms):
        if self.planner is not None:
            plan = self.planner.best_plan(candidates, shape, 1, now_ms)
            if plan is not None:
                by_name = {w.name: w for w in candidates}
                coord = by_name.get(plan.coordinator)
                if coord is not None:
                    return coord
        return super().choose(candidates, shape, now_ms)

    def ect_table(self, candidates, shape, now_ms):
        table = super().ect_table(candidates, shape, now_ms)
        if self.planner is not None:
            for plan in self.planner.plan_space(candidates, shape, 1,
                                                now_ms):
                if plan.kind != "single":
                    table[f"plan:{plan.label}"] = plan.predicted_ms
        return table


class RoundRobinRouter(Router):
    """Cycle through workers by name, skipping unroutable ones."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, candidates, shape, now_ms):
        ordered = sorted(candidates, key=lambda w: w.name)
        worker = ordered[self._next % len(ordered)]
        self._next += 1
        return worker


class RandomRouter(Router):
    """Seeded uniform placement (deterministic for a fixed seed)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def choose(self, candidates, shape, now_ms):
        ordered = sorted(candidates, key=lambda w: w.name)
        return ordered[int(self._rng.integers(len(ordered)))]


def make_router(policy, seed: int = 0) -> Router:
    """Resolve a policy name (or pass a Router through unchanged)."""
    if isinstance(policy, Router):
        return policy
    table = {
        "cost": CostModelRouter,
        "shard-cost": ShardAwareCostRouter,
        "round-robin": RoundRobinRouter,
        "roundrobin": RoundRobinRouter,
        "random": lambda: RandomRouter(seed=seed),
    }
    try:
        factory = table[str(policy)]
    except KeyError:
        raise ValueError(f"unknown routing policy {policy!r}; choose from "
                         f"('cost', 'shard-cost', 'round-robin', "
                         f"'random')") from None
    return factory()
