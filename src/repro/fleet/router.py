"""Routing policies: cost-model, round-robin and random placement.

The cost-model router operationalises the paper's per-device latency
model at serving time: for every candidate worker it computes an

    expected completion time (ECT)
        = current backlog (busy device time still owed + predicted
          service time of everything already queued)
        + predicted service time of the new request on *that* device

and places the request on the worker with the smallest ECT (ties broken
by worker name, so decisions are deterministic).  Predicted service
times come from :class:`EngineCostModel`, which walks the model's
deformable sites through the same gpusim cost path the NAS latency table
(Eq. 6) uses — per device, per backend, per geometry — and memoises each
(shape, batch) query.

Round-robin and random placement are the baselines the fleet bench
compares against; on a heterogeneous fleet they waste the fast device by
construction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: predicted service milliseconds for (image shape, batch size)
Predictor = Callable[[Tuple[int, ...], int], float]


class EngineCostModel:
    """Predict per-device deformable latency for a DefconEngine's model.

    For every deformable site of the engine's model (the same candidate
    sites the autotuner walks) the predictor runs the gpusim latency path
    — :func:`repro.nas.latency_table.deform_latency_ms` — on this
    worker's device and backend, scaling the nominal site geometry to the
    request's image extent.  Results are memoised per (shape, batch), so
    steady-state routing costs a dict lookup.
    """

    def __init__(self, engine, backend: Optional[str] = None):
        from repro.deform.layers import DeformConv2d

        self.spec = engine.spec
        self.backend = backend if backend is not None else engine.backend
        model = engine.model
        backbone = getattr(model, "backbone", None)
        self._sites = []
        if backbone is not None and hasattr(backbone, "candidate_sites"):
            for spec_site, mod in backbone.candidate_sites():
                if isinstance(mod, DeformConv2d):
                    self._sites.append(spec_site.layer_config())
        self._nominal = getattr(model, "input_size",
                                getattr(backbone, "input_size", None))
        self._cache: Dict[Tuple[Tuple[int, ...], int], float] = {}

    def __call__(self, shape: Tuple[int, ...], batch: int = 1) -> float:
        from repro.nas.latency_table import deform_latency_ms

        key = (tuple(shape), int(batch))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if not self._sites:
            # no deformable layers to model — fall back to a constant so
            # ECT still reflects queue depth
            ms = float(batch)
        else:
            scale = 1.0
            if self._nominal and len(shape) == 3:
                scale = shape[-1] / float(self._nominal)
            ms = 0.0
            for cfg in self._sites:
                scaled = replace(
                    cfg,
                    height=max(4, int(round(cfg.height * scale))),
                    width=max(4, int(round(cfg.width * scale))),
                    batch=batch)
                ms += deform_latency_ms(scaled, self.spec,
                                        backend=self.backend)
        self._cache[key] = ms
        return ms


class Router:
    """Pick a worker for one request among the routable candidates."""

    name = "base"

    def choose(self, candidates: Sequence["FleetWorker"],  # noqa: F821
               shape: Tuple[int, ...], now_ms: float):
        raise NotImplementedError

    def ect_table(self, candidates, shape: Tuple[int, ...],
                  now_ms: float) -> Dict[str, float]:
        """Expected completion time per candidate (for observability —
        every policy records it so routing decisions stay inspectable)."""
        return {w.name: w.estimated_completion_ms(shape, now_ms)
                for w in candidates}


class CostModelRouter(Router):
    """Lowest expected completion time wins (ties by worker name)."""

    name = "cost"

    def choose(self, candidates, shape, now_ms):
        return min(candidates,
                   key=lambda w: (w.estimated_completion_ms(shape, now_ms),
                                  w.name))


class RoundRobinRouter(Router):
    """Cycle through workers by name, skipping unroutable ones."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, candidates, shape, now_ms):
        ordered = sorted(candidates, key=lambda w: w.name)
        worker = ordered[self._next % len(ordered)]
        self._next += 1
        return worker


class RandomRouter(Router):
    """Seeded uniform placement (deterministic for a fixed seed)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def choose(self, candidates, shape, now_ms):
        ordered = sorted(candidates, key=lambda w: w.name)
        return ordered[int(self._rng.integers(len(ordered)))]


def make_router(policy, seed: int = 0) -> Router:
    """Resolve a policy name (or pass a Router through unchanged)."""
    if isinstance(policy, Router):
        return policy
    table = {
        "cost": CostModelRouter,
        "round-robin": RoundRobinRouter,
        "roundrobin": RoundRobinRouter,
        "random": lambda: RandomRouter(seed=seed),
    }
    try:
        factory = table[str(policy)]
    except KeyError:
        raise ValueError(f"unknown routing policy {policy!r}; choose from "
                         f"('cost', 'round-robin', 'random')") from None
    return factory()
