"""COCO-style mean Average Precision (box and mask).

Implements the standard COCO protocol the paper reports: AP averaged over
IoU thresholds 0.50:0.05:0.95 (and AP50 separately), greedy matching of
score-sorted detections to ground truth, 101-point interpolated
precision, mean over classes present in the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.iou import box_iou, mask_iou

COCO_IOU_THRESHOLDS = tuple(np.round(np.arange(0.5, 1.0, 0.05), 2))
RECALL_POINTS = np.linspace(0.0, 1.0, 101)


@dataclass
class Detection:
    """One predicted instance on one image."""

    image_id: int
    label: int
    score: float
    box: np.ndarray                      # (4,)
    mask: Optional[np.ndarray] = None    # (H, W) bool


@dataclass
class GroundTruth:
    """One annotated instance on one image."""

    image_id: int
    label: int
    box: np.ndarray
    mask: Optional[np.ndarray] = None


@dataclass
class EvalResult:
    """Box/mask mAP bundle matching the paper's reporting columns."""

    box_map: float
    mask_map: float
    box_ap50: float
    mask_ap50: float
    per_class: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    def row(self) -> Dict[str, float]:
        return {
            "box_map": round(100 * self.box_map, 2),
            "mask_map": round(100 * self.mask_map, 2),
            "mask_ap50": round(100 * self.mask_ap50, 2),
        }


def _average_precision(matched: np.ndarray, scores: np.ndarray,
                       num_gt: int) -> float:
    """101-point interpolated AP from per-detection match flags."""
    if num_gt == 0:
        return float("nan")
    if len(matched) == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    matched = matched[order]
    tp = np.cumsum(matched)
    fp = np.cumsum(~matched)
    recall = tp / num_gt
    precision = tp / np.maximum(tp + fp, 1)
    # Precision envelope, then 101-point sampling (COCO).
    for i in range(len(precision) - 2, -1, -1):
        precision[i] = max(precision[i], precision[i + 1])
    ap = 0.0
    for r in RECALL_POINTS:
        idx = np.searchsorted(recall, r, side="left")
        ap += precision[idx] if idx < len(precision) else 0.0
    return ap / len(RECALL_POINTS)


def _match_class(dets: List[Detection], gts: List[GroundTruth],
                 iou_thr: float, use_mask: bool) -> np.ndarray:
    """Greedy matching per image; returns the per-detection TP flags."""
    flags = np.zeros(len(dets), dtype=bool)
    by_image: Dict[int, List[int]] = {}
    for i, g in enumerate(gts):
        by_image.setdefault(g.image_id, []).append(i)
    taken = set()
    order = np.argsort([-d.score for d in dets], kind="stable")
    for rank in order:
        det = dets[rank]
        candidates = by_image.get(det.image_id, [])
        best_iou, best_gt = iou_thr, None
        for gi in candidates:
            if gi in taken:
                continue
            gt = gts[gi]
            if use_mask:
                if det.mask is None or gt.mask is None:
                    continue
                iou = float(mask_iou(det.mask[None], gt.mask[None])[0, 0])
            else:
                iou = float(box_iou(det.box[None], gt.box[None])[0, 0])
            if iou >= best_iou:
                best_iou, best_gt = iou, gi
        if best_gt is not None:
            taken.add(best_gt)
            flags[rank] = True
    return flags


def average_precision(dets: Sequence[Detection], gts: Sequence[GroundTruth],
                      iou_thr: float, use_mask: bool) -> Dict[int, float]:
    """Per-class AP at one IoU threshold."""
    labels = sorted({g.label for g in gts})
    result = {}
    for label in labels:
        cls_dets = [d for d in dets if d.label == label]
        cls_gts = [g for g in gts if g.label == label]
        flags = _match_class(cls_dets, cls_gts, iou_thr, use_mask)
        scores = np.array([d.score for d in cls_dets])
        result[label] = _average_precision(flags, scores, len(cls_gts))
    return result


def evaluate_map(dets: Sequence[Detection], gts: Sequence[GroundTruth],
                 iou_thresholds: Sequence[float] = COCO_IOU_THRESHOLDS
                 ) -> EvalResult:
    """Full COCO-style evaluation: box & mask mAP plus AP50."""
    if not gts:
        raise ValueError("no ground truth to evaluate against")
    box_aps, mask_aps = [], []
    box_ap50: Dict[int, float] = {}
    mask_ap50: Dict[int, float] = {}
    for thr in iou_thresholds:
        box_cls = average_precision(dets, gts, thr, use_mask=False)
        mask_cls = average_precision(dets, gts, thr, use_mask=True)
        box_aps.append(np.nanmean(list(box_cls.values())))
        mask_aps.append(np.nanmean(list(mask_cls.values())))
        if abs(thr - 0.5) < 1e-9:
            box_ap50, mask_ap50 = box_cls, mask_cls
    per_class = {
        label: (box_ap50.get(label, 0.0), mask_ap50.get(label, 0.0))
        for label in sorted({g.label for g in gts})
    }
    return EvalResult(
        box_map=float(np.nanmean(box_aps)),
        mask_map=float(np.nanmean(mask_aps)),
        box_ap50=float(np.nanmean(list(box_ap50.values()))),
        mask_ap50=float(np.nanmean(list(mask_ap50.values()))),
        per_class=per_class,
    )
