"""Procedural streaming video — the temporal-coherence workload.

Every other generator in :mod:`repro.data` treats samples as i.i.d.
single frames, but the dominant deployment for deformable ops is
streaming vision (DCNv4 positions the deformable operator as *the*
dynamic op for video backbones): consecutive frames of one stream
produce highly similar offset fields.  This module makes that workload
procedural and reproducible:

* **frames** — the same parametric shapes as :mod:`repro.data.shapes`,
  but each object follows a smooth closed-form trajectory (a Lissajous
  path inside the canvas) with a smoothly varying deformation
  parameter.  Per-frame shape draws are replayed from a fixed per-object
  seed, so the *only* frame-to-frame change is the smooth motion — no
  temporal popping;
* **offsets** — one offset tensor per frame with an analytically
  **bounded per-frame delta**: ``off_t = B + a_t * U1 + b_t * U2`` where
  ``B`` is a smooth base field (the realistic learned-offset surrogate),
  ``U1``/``U2`` are max-abs-normalised smooth unit fields and
  ``(a_t, b_t)`` trace a slow circle whose step size guarantees
  ``max|off_{t+1} - off_t| <= frame_delta``.  The step magnitude varies
  along the circle, so the delta seen at frame stride ``s`` grows
  smoothly with ``s`` — the delta-keyed plan cache's hit-rate decays
  monotonically as stride grows (see docs/streaming.md);
* **byte stability** — frames and offsets are pure functions of
  ``(seed, frame index)``: random access through :meth:`VideoStream.frame`
  never depends on iteration history, and :meth:`VideoStream.digest`
  fingerprints the stream exactly like ``loadgen``'s byte-stable
  arrival streams.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.data.shapes import (NUM_CLASSES, Instance, _smooth_field,
                               render_instance)

#: Default offset tensor shape (N, 2*taps*groups, out_h, out_w) used when
#: the caller does not bind the stream to a concrete layer geometry.
DEFAULT_OFFSET_SHAPE = (1, 18, 32, 32)


@dataclass
class VideoFrame:
    """One frame of a procedural stream: image, ground truth, offsets."""

    index: int
    t_ms: float
    image: np.ndarray                       # (3, S, S) float32 in [0, 1]
    offset: np.ndarray                      # offset_shape float32
    instances: List[Instance] = field(default_factory=list)


@dataclass(frozen=True)
class _ObjectTrack:
    """Closed-form trajectory of one object across the stream."""

    label: int
    scale: float
    colour: Tuple[float, float, float]
    seed: int                               # replayed shape draws
    fx: float                               # Lissajous frequencies (rad/frame)
    fy: float
    px: float                               # phases
    py: float
    dphase: float                           # deformation oscillation phase


class VideoStream:
    """A deterministic, byte-stable procedural video stream.

    ``frame_delta`` is the guaranteed bound on the max-abs offset change
    between consecutive frames — the knob the delta-keyed plan cache's
    ``delta_bound`` is tuned against.  ``offset_sigma`` sets both the
    magnitude of the smooth base offsets and the radius of the temporal
    excursion around them.

    ``frame(t)`` is random-access and O(1) in history: benchmarks sweep
    frame *stride* by simply sampling ``frame(0), frame(s), frame(2s)``.
    """

    def __init__(self, size: int = 64, num_objects: int = 2,
                 num_frames: Optional[int] = 64, seed: int = 0,
                 offset_shape: Tuple[int, ...] = DEFAULT_OFFSET_SHAPE,
                 offset_sigma: float = 2.0, frame_delta: float = 0.25,
                 deformation: float = 1.0, fps: float = 30.0):
        if size < 16:
            raise ValueError(f"size {size} too small (need >= 16)")
        if num_objects < 1:
            raise ValueError("num_objects must be >= 1")
        if frame_delta <= 0:
            raise ValueError(f"frame_delta must be > 0, got {frame_delta}")
        if offset_sigma <= 0:
            raise ValueError(f"offset_sigma must be > 0, got {offset_sigma}")
        if fps <= 0:
            raise ValueError(f"fps must be > 0, got {fps}")
        if len(offset_shape) != 4:
            raise ValueError(f"offset_shape must be 4-D (N, C, H, W), "
                             f"got {offset_shape}")
        self.size = int(size)
        self.num_frames = None if num_frames is None else int(num_frames)
        self.seed = int(seed)
        self.offset_shape = tuple(int(d) for d in offset_shape)
        self.offset_sigma = float(offset_sigma)
        self.frame_delta = float(frame_delta)
        self.deformation = float(deformation)
        self.fps = float(fps)

        # -- layout: fixed per-stream object tracks --------------------
        layout = np.random.default_rng([self.seed, 0])
        margin_frac = 0.30
        self._margin = self.size * margin_frac
        tracks: List[_ObjectTrack] = []
        for i in range(int(num_objects)):
            tracks.append(_ObjectTrack(
                label=int(layout.integers(0, NUM_CLASSES)),
                scale=float(layout.uniform(self.size * 0.12,
                                           self.size * 0.20)),
                colour=tuple(float(c)
                             for c in layout.uniform(0.35, 1.0, size=3)),
                seed=int(layout.integers(0, 2 ** 31)),
                fx=float(layout.uniform(0.02, 0.06)),
                fy=float(layout.uniform(0.02, 0.06)),
                px=float(layout.uniform(0, 2 * np.pi)),
                py=float(layout.uniform(0, 2 * np.pi)),
                dphase=float(layout.uniform(0, 2 * np.pi)),
            ))
        self._tracks = tracks

        # Background rendered once — frame-to-frame change is purely the
        # object motion, like a static-camera stream.
        bg_rng = np.random.default_rng([self.seed, 1])
        self._background = bg_rng.uniform(
            0.0, 0.25, size=(3, self.size, self.size)).astype(np.float32)

        # -- offset model: B + a_t*U1 + b_t*U2 -------------------------
        self._base = self._offset_field([self.seed, 2], self.offset_sigma)
        u1 = self._offset_field([self.seed, 3], 1.0)
        u2 = self._offset_field([self.seed, 4], 1.0)
        self._u1 = u1 / max(float(np.max(np.abs(u1))), 1e-9)
        self._u2 = u2 / max(float(np.max(np.abs(u2))), 1e-9)
        #: excursion radius and angular step: |delta(off)| per frame is
        #: bounded by |da| + |db| = 2*R*sin(w/2)*(|cos|+|sin|) and the
        #: trig factor never exceeds sqrt(2), so choosing
        #: sin(w/2) = frame_delta / (2*sqrt(2)*R) makes ``frame_delta``
        #: a hard per-frame bound (test_video.py pins this).
        self._radius = self.offset_sigma
        ratio = self.frame_delta / (2.0 * np.sqrt(2.0) * self._radius)
        self._omega = 2.0 * np.arcsin(min(ratio, 1.0))

    # ------------------------------------------------------------------
    def _offset_field(self, seed_seq: List[int],
                      amplitude: float) -> np.ndarray:
        """One smooth (N, C, H, W) field from bilinear-upsampled noise."""
        rng = np.random.default_rng(seed_seq)
        n, c, h, w = self.offset_shape
        planes = [_smooth_field((h, w), amplitude, rng, grid=4)
                  for _ in range(n * c)]
        return np.stack(planes).reshape(self.offset_shape).astype(np.float32)

    @property
    def session(self) -> str:
        """Stable session id for fleet routing / plan-cache anchoring."""
        return f"video-{self.seed & 0xFFFFFFFF:08x}"

    def offsets(self, t: int) -> np.ndarray:
        """The frame-``t`` offset tensor (float32, fresh array)."""
        if t < 0:
            raise ValueError(f"frame index must be >= 0, got {t}")
        a = self._radius * np.sin(self._omega * t)
        b = self._radius * np.cos(self._omega * t)
        off = self._base + np.float32(a) * self._u1 + np.float32(b) * self._u2
        return off.astype(np.float32)

    def frame(self, t: int) -> VideoFrame:
        """Render frame ``t`` — pure function of (seed, t)."""
        if t < 0:
            raise ValueError(f"frame index must be >= 0, got {t}")
        if self.num_frames is not None and t >= self.num_frames:
            raise IndexError(f"frame {t} out of range "
                             f"(num_frames={self.num_frames})")
        size = self.size
        image = self._background.copy()
        lo, hi = self._margin, size - self._margin
        mid, amp = (lo + hi) / 2.0, (hi - lo) / 2.0
        instances: List[Instance] = []
        for track in self._tracks:
            cx = mid + amp * np.sin(track.fx * t + track.px)
            cy = mid + amp * np.sin(track.fy * t + track.py)
            # Deformation oscillates but never reaches 0: a zero skips
            # the elastic-field draws inside render_instance and would
            # desynchronise the replayed per-object rng stream.
            deform = self.deformation * (0.65 + 0.35 * np.sin(
                0.05 * t + track.dphase))
            rng = np.random.default_rng([track.seed])
            mask = render_instance(track.label, size, (float(cx), float(cy)),
                                   track.scale, rng,
                                   deformation=float(deform))
            if mask.sum() < 12:
                continue
            for ch in range(3):
                image[ch][mask] = track.colour[ch]
            ys_idx, xs_idx = np.nonzero(mask)
            box = (float(xs_idx.min()), float(ys_idx.min()),
                   float(xs_idx.max() + 1), float(ys_idx.max() + 1))
            instances.append(Instance(label=track.label, box=box, mask=mask))
        return VideoFrame(index=t, t_ms=1e3 * t / self.fps,
                          image=np.clip(image, 0.0, 1.0),
                          offset=self.offsets(t), instances=instances)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self.num_frames is None:
            raise TypeError("unbounded VideoStream has no len()")
        return self.num_frames

    def __iter__(self) -> Iterator[VideoFrame]:
        t = 0
        while self.num_frames is None or t < self.num_frames:
            yield self.frame(t)
            t += 1

    def digest(self, num_frames: Optional[int] = None) -> str:
        """Byte-stable fingerprint of the first ``num_frames`` frames.

        Hashes the exact image and offset bytes (plus the stream header),
        so any nondeterminism in rendering or the offset walk changes the
        digest — the streaming analogue of ``loadgen``'s
        ``stream_digest``.
        """
        n = num_frames if num_frames is not None else self.num_frames
        if n is None:
            raise ValueError("digest() of an unbounded stream needs "
                             "num_frames")
        h = hashlib.blake2b(digest_size=16)
        header = (f"video1|size={self.size}|seed={self.seed}"
                  f"|objects={len(self._tracks)}"
                  f"|offset_shape={self.offset_shape}"
                  f"|sigma={self.offset_sigma!r}"
                  f"|delta={self.frame_delta!r}"
                  f"|deformation={self.deformation!r}|fps={self.fps!r}")
        h.update(header.encode())
        for t in range(int(n)):
            fr = self.frame(t)
            h.update(np.ascontiguousarray(fr.image).tobytes())
            h.update(np.ascontiguousarray(fr.offset).tobytes())
        return h.hexdigest()


def make_video(num_frames: int = 16, size: int = 64, num_objects: int = 2,
               seed: int = 0, **kwargs) -> List[VideoFrame]:
    """Materialise a short clip as a list of frames (test/bench sugar)."""
    stream = VideoStream(size=size, num_objects=num_objects,
                         num_frames=num_frames, seed=seed, **kwargs)
    return [stream.frame(t) for t in range(num_frames)]
