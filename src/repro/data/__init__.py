"""Synthetic instance-segmentation data + COCO-style metrics.

The MS-COCO substitute of the reproduction: a procedural dataset of
geometrically deformed shapes (:mod:`~repro.data.shapes`) with full
instance annotations, and a faithful COCO mAP evaluator
(:mod:`~repro.data.coco_map`).
"""

from repro.data.shapes import (CLASS_NAMES, NUM_CLASSES, Instance, Sample,
                               make_sample, render_instance)
from repro.data.dataset import (ShapesDataset, StreamingShapesDataset,
                                classification_arrays)
from repro.data.video import VideoFrame, VideoStream, make_video
from repro.data.iou import box_from_mask, box_iou, mask_iou
from repro.data.coco_map import (COCO_IOU_THRESHOLDS, Detection, EvalResult,
                                 GroundTruth, average_precision, evaluate_map)

__all__ = [
    "CLASS_NAMES", "NUM_CLASSES", "Instance", "Sample", "make_sample",
    "render_instance",
    "ShapesDataset", "StreamingShapesDataset", "classification_arrays",
    "VideoFrame", "VideoStream", "make_video",
    "box_iou", "mask_iou", "box_from_mask",
    "Detection", "GroundTruth", "EvalResult", "evaluate_map",
    "average_precision", "COCO_IOU_THRESHOLDS",
]
