"""Dataset containers and batching for the shapes task."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.data.shapes import NUM_CLASSES, Sample, make_sample


@dataclass
class ShapesDataset:
    """A fixed, seeded collection of generated samples.

    The train/val protocol mirrors the paper's COCO split in miniature:
    disjoint seeds, identical generator settings.
    """

    samples: List[Sample]
    size: int
    num_classes: int = NUM_CLASSES

    @classmethod
    def generate(cls, n: int, size: int = 64, seed: int = 0,
                 deformation: float = 1.0, num_classes: int = NUM_CLASSES,
                 num_objects: Optional[int] = None) -> "ShapesDataset":
        """``num_objects=None`` draws 1–3 instances per image (detection);
        pass 1 for the single-object classification protocol."""
        rng = np.random.default_rng(seed)
        samples = [make_sample(size=size, rng=rng, deformation=deformation,
                               num_classes=num_classes,
                               num_objects=num_objects) for _ in range(n)]
        return cls(samples=samples, size=size, num_classes=num_classes)

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, idx: int) -> Sample:
        return self.samples[idx]

    def images(self) -> np.ndarray:
        """All images stacked into (N, 3, H, W)."""
        return np.stack([s.image for s in self.samples])

    def batches(self, batch_size: int, seed: Optional[int] = None
                ) -> Iterator[Tuple[np.ndarray, List[Sample]]]:
        """Yield (images, samples) minibatches, optionally shuffled."""
        order = np.arange(len(self.samples))
        if seed is not None:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, len(order), batch_size):
            idx = order[start:start + batch_size]
            batch = [self.samples[i] for i in idx]
            yield np.stack([s.image for s in batch]), batch


@dataclass
class StreamingShapesDataset:
    """Infinite-data variant: every epoch draws *fresh* samples.

    Generation costs ~1 ms per image, far below a training step, so
    streaming removes the train/val gap entirely (the generator is the
    distribution).  Exposes the same ``batches`` API as
    :class:`ShapesDataset`; ``epoch_size`` controls the nominal length.
    """

    epoch_size: int
    size: int = 64
    deformation: float = 1.0
    num_classes: int = NUM_CLASSES
    num_objects: Optional[int] = None
    seed: int = 0

    def __len__(self) -> int:
        return self.epoch_size

    def batches(self, batch_size: int, seed: Optional[int] = None
                ) -> Iterator[Tuple[np.ndarray, List[Sample]]]:
        rng = np.random.default_rng(
            self.seed if seed is None else self.seed * 100003 + seed)
        for _start in range(0, self.epoch_size, batch_size):
            n = min(batch_size, self.epoch_size - _start)
            batch = [make_sample(size=self.size, rng=rng,
                                 deformation=self.deformation,
                                 num_classes=self.num_classes,
                                 num_objects=self.num_objects)
                     for _ in range(n)]
            yield np.stack([s.image for s in batch]), batch

    def materialise(self, n: int, seed: int = 0) -> ShapesDataset:
        """A fixed evaluation split drawn from the same distribution."""
        return ShapesDataset.generate(
            n, size=self.size, seed=self.seed * 7919 + seed,
            deformation=self.deformation, num_classes=self.num_classes,
            num_objects=self.num_objects)


def classification_arrays(dataset: ShapesDataset) -> Tuple[np.ndarray, np.ndarray]:
    """Single-object view for the classification proxy task.

    Returns (images, labels) keeping only samples with exactly one
    instance — a clean signal for quick accuracy comparisons.
    """
    xs, ys = [], []
    for s in dataset.samples:
        if len(s.instances) == 1:
            xs.append(s.image)
            ys.append(s.instances[0].label)
    if not xs:
        raise ValueError("dataset has no single-instance samples")
    return np.stack(xs), np.array(ys, dtype=np.int64)
