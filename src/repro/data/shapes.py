"""Procedural "deformable shapes" dataset — the MS-COCO stand-in.

The paper's accuracy story rests on objects with geometric variation that
rigid receptive fields model poorly (Section I).  This generator produces
exactly that stress: each instance is a parametric shape (star, ellipse,
cross, blob) pushed through a random affine transform *and* a smooth
elastic warp before rasterisation.  Colour and texture are randomised
independently of class, so shape geometry is the only reliable cue — the
regime where deformable sampling earns its accuracy.

Every sample carries full instance-segmentation ground truth: per-object
class, tight bounding box and binary mask, so the COCO-style box/mask mAP
of :mod:`repro.data.coco_map` applies directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

CLASS_NAMES = ("star", "ellipse", "cross", "blob")
NUM_CLASSES = len(CLASS_NAMES)


@dataclass
class Instance:
    """One ground-truth object."""

    label: int
    box: Tuple[float, float, float, float]   # x1, y1, x2, y2 (pixels)
    mask: np.ndarray                         # (H, W) bool


@dataclass
class Sample:
    """One image with its instances."""

    image: np.ndarray                        # (3, H, W) float32 in [0, 1]
    instances: List[Instance] = field(default_factory=list)


def _inside_shape(label: int, xs: np.ndarray, ys: np.ndarray,
                  rng: np.random.Generator) -> np.ndarray:
    """Inside test of the canonical (unit-scale) shape at points (xs, ys)."""
    r = np.sqrt(xs**2 + ys**2) + 1e-9
    theta = np.arctan2(ys, xs)
    if label == 0:    # star: five-lobed polar curve
        lobes = rng.integers(5, 7)
        radius = 0.55 + 0.38 * np.cos(lobes * theta)
        return r <= radius
    if label == 1:    # ellipse
        a = rng.uniform(0.55, 0.95)
        b = rng.uniform(0.3, 0.55)
        return (xs / a) ** 2 + (ys / b) ** 2 <= 1.0
    if label == 2:    # cross: union of two bars
        w = rng.uniform(0.18, 0.3)
        bar1 = (np.abs(xs) <= w) & (np.abs(ys) <= 0.9)
        bar2 = (np.abs(ys) <= w) & (np.abs(xs) <= 0.9)
        return bar1 | bar2
    if label == 3:    # blob: low-order random polar harmonic
        c1, c2 = rng.uniform(0.1, 0.3, size=2)
        p1, p2 = rng.uniform(0, 2 * np.pi, size=2)
        radius = 0.6 + c1 * np.cos(2 * theta + p1) + c2 * np.cos(3 * theta + p2)
        return r <= radius
    raise ValueError(f"unknown label {label}")


def _smooth_field(shape: Tuple[int, int], amplitude: float,
                  rng: np.random.Generator, grid: int = 4) -> np.ndarray:
    """A smooth random displacement field via bilinear-upsampled noise."""
    h, w = shape
    coarse = rng.normal(0.0, amplitude, size=(grid, grid))
    gy = np.linspace(0, grid - 1, h)
    gx = np.linspace(0, grid - 1, w)
    y0 = np.clip(gy.astype(int), 0, grid - 2)
    x0 = np.clip(gx.astype(int), 0, grid - 2)
    fy = (gy - y0)[:, None]
    fx = (gx - x0)[None, :]
    c00 = coarse[y0][:, x0]
    c01 = coarse[y0][:, x0 + 1]
    c10 = coarse[y0 + 1][:, x0]
    c11 = coarse[y0 + 1][:, x0 + 1]
    return ((1 - fy) * (1 - fx) * c00 + (1 - fy) * fx * c01
            + fy * (1 - fx) * c10 + fy * fx * c11)


def render_instance(label: int, size: int, center: Tuple[float, float],
                    scale: float, rng: np.random.Generator,
                    deformation: float = 1.0) -> np.ndarray:
    """Rasterise one deformed instance mask on a (size, size) canvas.

    ``deformation`` scales both the affine shear/rotation spread and the
    elastic warp amplitude; 0 gives rigid axis-aligned shapes.
    """
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float32)
    cx, cy = center
    # Elastic warp (applied in image space, inverse-mapped).
    if deformation > 0:
        amp = deformation * scale * 0.25
        xs = xs + _smooth_field((size, size), amp, rng)
        ys = ys + _smooth_field((size, size), amp, rng)
    # Inverse affine: rotation + shear + anisotropic scale.
    angle = rng.uniform(0, 2 * np.pi)
    shear = rng.uniform(-0.4, 0.4) * deformation
    sx = scale * rng.uniform(0.75, 1.3)
    sy = scale * rng.uniform(0.75, 1.3)
    ca, sa = np.cos(angle), np.sin(angle)
    u = (xs - cx) / sx
    v = (ys - cy) / sy
    uu = ca * u + sa * v
    vv = -sa * u + ca * v + shear * uu
    return _inside_shape(label, uu, vv, rng)


def make_sample(size: int = 64, num_objects: Optional[int] = None,
                rng: Optional[np.random.Generator] = None,
                deformation: float = 1.0, noise: float = 0.05,
                num_classes: int = NUM_CLASSES) -> Sample:
    """Generate one image with 1–3 non-degenerate instances."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if num_objects is None:
        num_objects = int(rng.integers(1, 4))
    image = rng.uniform(0.0, 0.25, size=(3, size, size)).astype(np.float32)
    instances: List[Instance] = []
    for _ in range(num_objects):
        label = int(rng.integers(0, num_classes))
        scale = rng.uniform(size * 0.12, size * 0.22)
        margin = scale * 1.3
        cx = rng.uniform(margin, size - margin)
        cy = rng.uniform(margin, size - margin)
        mask = render_instance(label, size, (cx, cy), scale, rng,
                               deformation=deformation)
        if mask.sum() < 12:
            continue
        colour = rng.uniform(0.35, 1.0, size=3).astype(np.float32)
        for ch in range(3):
            image[ch][mask] = colour[ch]
        ys_idx, xs_idx = np.nonzero(mask)
        box = (float(xs_idx.min()), float(ys_idx.min()),
               float(xs_idx.max() + 1), float(ys_idx.max() + 1))
        instances.append(Instance(label=label, box=box, mask=mask))
    if noise > 0:
        image = image + rng.normal(0, noise, size=image.shape).astype(np.float32)
    return Sample(image=np.clip(image, 0.0, 1.0), instances=instances)
