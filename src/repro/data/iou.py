"""IoU primitives for boxes and masks."""

from __future__ import annotations

import numpy as np


def box_iou(boxes1: np.ndarray, boxes2: np.ndarray) -> np.ndarray:
    """Pairwise IoU of (N, 4) and (M, 4) boxes in x1y1x2y2 form."""
    boxes1 = np.atleast_2d(np.asarray(boxes1, dtype=np.float64))
    boxes2 = np.atleast_2d(np.asarray(boxes2, dtype=np.float64))
    if boxes1.size == 0 or boxes2.size == 0:
        return np.zeros((len(boxes1), len(boxes2)))
    x1 = np.maximum(boxes1[:, None, 0], boxes2[None, :, 0])
    y1 = np.maximum(boxes1[:, None, 1], boxes2[None, :, 1])
    x2 = np.minimum(boxes1[:, None, 2], boxes2[None, :, 2])
    y2 = np.minimum(boxes1[:, None, 3], boxes2[None, :, 3])
    inter = np.clip(x2 - x1, 0, None) * np.clip(y2 - y1, 0, None)
    area1 = ((boxes1[:, 2] - boxes1[:, 0])
             * (boxes1[:, 3] - boxes1[:, 1]))[:, None]
    area2 = ((boxes2[:, 2] - boxes2[:, 0])
             * (boxes2[:, 3] - boxes2[:, 1]))[None, :]
    union = area1 + area2 - inter
    return np.where(union > 0, inter / union, 0.0)


def mask_iou(masks1: np.ndarray, masks2: np.ndarray) -> np.ndarray:
    """Pairwise IoU of (N, H, W) and (M, H, W) boolean masks."""
    masks1 = np.asarray(masks1, dtype=bool)
    masks2 = np.asarray(masks2, dtype=bool)
    if masks1.size == 0 or masks2.size == 0:
        return np.zeros((len(masks1), len(masks2)))
    m1 = masks1.reshape(len(masks1), -1).astype(np.float64)
    m2 = masks2.reshape(len(masks2), -1).astype(np.float64)
    inter = m1 @ m2.T
    area1 = m1.sum(axis=1)[:, None]
    area2 = m2.sum(axis=1)[None, :]
    union = area1 + area2 - inter
    return np.where(union > 0, inter / union, 0.0)


def box_from_mask(mask: np.ndarray) -> np.ndarray:
    """Tight x1y1x2y2 box of a boolean mask (zeros if empty)."""
    ys, xs = np.nonzero(mask)
    if len(ys) == 0:
        return np.zeros(4)
    return np.array([xs.min(), ys.min(), xs.max() + 1, ys.max() + 1],
                    dtype=np.float64)
