"""Global-memory coalescing model.

NVIDIA GPUs service a warp's load instruction by fetching the set of unique
32-byte *sectors* its 32 lanes touch.  A fully coalesced float32 load (32
consecutive words) needs 4 sectors; a pathological gather can need 32.  The
ratio useful/transferred bytes is nvprof's ``gld_efficiency`` and the
sectors-per-request ratio is ``gld_transactions_per_request`` — both shown
in the paper's Fig. 10.

`coalescing_stats` computes exact counters from a warp-shaped address
array; `strided_stats` is the closed form for regular streams (used for
offset/weight/output traffic, which is unit-stride).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class CoalescingStats:
    """Counter bundle for a batch of warp load requests."""

    requests: int
    transactions: int
    bytes_requested: float
    bytes_transferred: float

    @property
    def transactions_per_request(self) -> float:
        return self.transactions / self.requests if self.requests else 0.0

    @property
    def efficiency(self) -> float:
        if self.bytes_transferred == 0:
            return 100.0
        return min(100.0, 100.0 * self.bytes_requested / self.bytes_transferred)

    def scaled(self, factor: float) -> "CoalescingStats":
        """Scale all counters (used when a sampled trace represents more warps)."""
        return CoalescingStats(
            requests=int(round(self.requests * factor)),
            transactions=int(round(self.transactions * factor)),
            bytes_requested=self.bytes_requested * factor,
            bytes_transferred=self.bytes_transferred * factor,
        )

    def merged(self, other: "CoalescingStats") -> "CoalescingStats":
        return CoalescingStats(
            requests=self.requests + other.requests,
            transactions=self.transactions + other.transactions,
            bytes_requested=self.bytes_requested + other.bytes_requested,
            bytes_transferred=self.bytes_transferred + other.bytes_transferred,
        )


EMPTY_COALESCING = CoalescingStats(0, 0, 0.0, 0.0)


def coalescing_stats(byte_addresses: np.ndarray, access_bytes: int,
                     spec: DeviceSpec,
                     active_mask: np.ndarray = None) -> CoalescingStats:
    """Exact sector counting for warp-shaped address arrays.

    ``byte_addresses``: (num_warps, warp_size) int64 byte addresses, one per
    lane.  ``access_bytes``: access width per lane (4 for float32).
    ``active_mask``: optional bool array of the same shape; inactive lanes
    (predicated off, e.g. out-of-bounds zero-substitution) issue no traffic.
    """
    addr = np.asarray(byte_addresses, dtype=np.int64)
    if addr.ndim != 2 or addr.shape[1] != spec.warp_size:
        raise ValueError(
            f"addresses must be (warps, {spec.warp_size}), got {addr.shape}")
    sector = spec.sector_bytes
    num_warps = addr.shape[0]
    # Each lane access may straddle a sector boundary only if access_bytes
    # doesn't divide the sector; our accesses are 2/4/8-byte aligned so one
    # sector per lane access suffices.
    sectors = addr // sector
    if active_mask is not None:
        active_mask = np.asarray(active_mask, dtype=bool)
        # Route inactive lanes to their warp-leader's sector so they add no
        # unique sectors (and no requested bytes).
        leader = sectors[:, :1]
        sectors = np.where(active_mask, sectors, leader)
        active_lanes = int(active_mask.sum())
        warp_has_active = active_mask.any(axis=1)
    else:
        active_lanes = addr.size
        warp_has_active = np.ones(num_warps, dtype=bool)

    # Unique sectors per warp, vectorised: sort each row, count changes.
    s_sorted = np.sort(sectors, axis=1)
    changes = (s_sorted[:, 1:] != s_sorted[:, :-1]).sum(axis=1) + 1
    changes = np.where(warp_has_active, changes, 0)
    requests = int(warp_has_active.sum())
    transactions = int(changes.sum())
    return CoalescingStats(
        requests=requests,
        transactions=transactions,
        bytes_requested=float(active_lanes * access_bytes),
        bytes_transferred=float(transactions * sector),
    )


def strided_stats(num_elements: int, access_bytes: int, spec: DeviceSpec,
                  stride_elements: int = 1) -> CoalescingStats:
    """Closed-form coalescing counters for a regular strided stream.

    ``stride_elements=1`` is the perfectly coalesced case (offset loads,
    output stores, GEMM operand streaming).
    """
    if num_elements == 0:
        return EMPTY_COALESCING
    warp = spec.warp_size
    sector = spec.sector_bytes
    requests = int(np.ceil(num_elements / warp))
    span = warp * stride_elements * access_bytes  # bytes touched per warp
    sectors_per_request = max(1, int(np.ceil(min(span, warp * sector) / sector)))
    if stride_elements * access_bytes >= sector:
        # Every lane lands in its own sector.
        sectors_per_request = warp
    transactions = requests * sectors_per_request
    return CoalescingStats(
        requests=requests,
        transactions=transactions,
        bytes_requested=float(num_elements * access_bytes),
        bytes_transferred=float(transactions * sector),
    )


def dram_time_ms(bytes_moved: float, spec: DeviceSpec) -> float:
    """Time to move ``bytes_moved`` at the achievable DRAM bandwidth."""
    return bytes_moved / (spec.effective_dram_gbps * 1e9) * 1e3
