"""GPU performance/functional simulator substrate.

Stands in for the NVIDIA Jetson AGX Xavier and RTX 2080 Ti hardware of the
paper: texture units with fixed-point bilinear filtering
(:mod:`~repro.gpusim.texture`), a sector-level global-memory coalescing
model (:mod:`~repro.gpusim.memory`), a block-linear texture cache
(:mod:`~repro.gpusim.cache`), a roofline latency model with occupancy and
wave effects (:mod:`~repro.gpusim.kernel`) and nvprof-style counters
(:mod:`~repro.gpusim.profiler`).
"""

from repro.gpusim.device import (DEVICES, ORIN, RTX_2080TI, RTX_3090,
                                 XAVIER, DeviceSpec, get_device)
from repro.gpusim.memory import (CoalescingStats, coalescing_stats,
                                 dram_time_ms, strided_stats)
from repro.gpusim.texture import (FIXED_POINT_FRACTION_BITS, LayeredTexture2D,
                                  TextureDescriptor, fits_texture_limits,
                                  quantize_fraction, texture_footprint_bytes)
from repro.gpusim.cache import TextureCacheModel, TextureCacheStats
from repro.gpusim.mipmap import MipmappedTexture2D, downsample_2x2
from repro.gpusim.kernel import (KernelCost, LaunchConfig, estimate_time_ms,
                                 gemm_cost, merge_costs, occupancy,
                                 stats_from_cost, wave_efficiency)
from repro.gpusim.profiler import KernelStats, ProfileLog
from repro.gpusim.trace import (SamplePlan, deform_input_coalescing,
                                texture_fetch_trace)

__all__ = [
    "DeviceSpec", "XAVIER", "RTX_2080TI", "ORIN", "RTX_3090",
    "DEVICES", "get_device",
    "CoalescingStats", "coalescing_stats", "strided_stats", "dram_time_ms",
    "LayeredTexture2D", "TextureDescriptor", "quantize_fraction",
    "FIXED_POINT_FRACTION_BITS", "texture_footprint_bytes",
    "fits_texture_limits",
    "TextureCacheModel", "TextureCacheStats",
    "MipmappedTexture2D", "downsample_2x2",
    "LaunchConfig", "KernelCost", "estimate_time_ms", "gemm_cost",
    "merge_costs", "occupancy", "wave_efficiency", "stats_from_cost",
    "KernelStats", "ProfileLog",
    "SamplePlan", "deform_input_coalescing", "texture_fetch_trace",
]
