"""Texture-cache model with a block-linear (2-D tiled) line layout.

GPU texture caches differ from ordinary data caches in two ways the paper's
optimisation exploits:

1. texels are stored *block-linear*: one cache line covers a small 2-D tile
   of texels, so spatially close fetches — even with fractional, irregular
   offsets — hit the same line;
2. the cache is optimised for streaming: per-CTA working sets are small and
   reuse is dominated by intra-tile locality.

The model is trace-driven but CTA-granular for speed: fetched texel
coordinates are mapped to line IDs, grouped by the CTA (output tile) that
issued them, and each CTA's misses are its unique lines — plus a thrashing
term when a CTA's working set exceeds the per-SM capacity share.  This is
what produces the tile-size sensitivity of paper Fig. 8: tiny tiles re-fetch
halo texels across CTAs, oversized tiles overflow the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class TextureCacheStats:
    """Aggregate results of a cache simulation."""

    requests: int          # bilinear fetch instructions (quads)
    texel_reads: int       # corner texels touched (≤ 4 per request)
    hits: int              # texel reads served by the cache
    misses: int            # line fills
    miss_bytes: float      # DRAM traffic caused by fills

    @property
    def hit_rate(self) -> float:
        if self.texel_reads == 0:
            return 0.0
        return 100.0 * self.hits / self.texel_reads

    def scaled(self, factor: float) -> "TextureCacheStats":
        return TextureCacheStats(
            requests=int(round(self.requests * factor)),
            texel_reads=int(round(self.texel_reads * factor)),
            hits=int(round(self.hits * factor)),
            misses=int(round(self.misses * factor)),
            miss_bytes=self.miss_bytes * factor,
        )


class TextureCacheModel:
    """CTA-granular texture cache simulation.

    Parameters
    ----------
    spec:
        Device description (cache capacity, line size, line tile shape).
    concurrent_layers:
        How many texture layers (feature-map channels) stream through one
        SM's cache concurrently; the per-CTA capacity share divides by it.
        The deformable kernels iterate channels of one deformable group in
        the inner loop, so a handful of layers are simultaneously live.
    """

    def __init__(self, spec: DeviceSpec, concurrent_layers: int = 4):
        self.spec = spec
        self.concurrent_layers = max(1, concurrent_layers)
        self.line_bytes = spec.tex_cache_line_bytes
        self.line_th, self.line_tw = spec.tex_line_tile
        capacity_bytes = spec.tex_cache_kb_per_sm * 1024
        self.capacity_lines = max(
            1, capacity_bytes // self.line_bytes // self.concurrent_layers)

    # ------------------------------------------------------------------
    def line_ids(self, y: np.ndarray, x: np.ndarray, tex_w: int) -> np.ndarray:
        """Map texel coordinates to block-linear line IDs."""
        lines_per_row = -(-tex_w // self.line_tw)  # ceil
        return (y // self.line_th) * lines_per_row + (x // self.line_tw)

    def simulate(self, y: np.ndarray, x: np.ndarray, cta_ids: np.ndarray,
                 tex_h: int, tex_w: int, corners: bool = True
                 ) -> TextureCacheStats:
        """Simulate a fetch trace for one texture layer.

        ``y``/``x``: int arrays of fetch positions (top-left corner of the
        bilinear quad when ``corners=True``); ``cta_ids``: the CTA each fetch
        belongs to.  Out-of-bounds corners are dropped (border texels are not
        read from memory — the paper notes boundary pixels are substituted
        as zero, not fetched).
        """
        y = np.asarray(y, dtype=np.int64).ravel()
        x = np.asarray(x, dtype=np.int64).ravel()
        cta = np.asarray(cta_ids, dtype=np.int64).ravel()
        if not (y.size == x.size == cta.size):
            raise ValueError("y, x, cta_ids must have equal length")
        requests = y.size
        if corners:
            # Expand each bilinear fetch to its (up to) four corner texels.
            y4 = np.concatenate([y, y, y + 1, y + 1])
            x4 = np.concatenate([x, x + 1, x, x + 1])
            cta4 = np.concatenate([cta] * 4)
        else:
            y4, x4, cta4 = y, x, cta
        valid = (y4 >= 0) & (y4 < tex_h) & (x4 >= 0) & (x4 < tex_w)
        y4, x4, cta4 = y4[valid], x4[valid], cta4[valid]
        texel_reads = int(y4.size)
        if texel_reads == 0:
            return TextureCacheStats(requests, 0, 0, 0, 0.0)

        lines = self.line_ids(y4, x4, tex_w)
        # Unique (cta, line) pairs = compulsory misses per CTA.
        key = cta4 * (lines.max() + 1) + lines
        uniq_keys, first_idx = np.unique(key, return_index=True)
        unique_pairs = uniq_keys.size
        # Per-CTA access and unique-line counts for the thrashing correction.
        cta_sorted = np.sort(cta4)
        cta_vals, accesses_per_cta = np.unique(cta_sorted, return_counts=True)
        uniq_cta_of_pairs = cta4[first_idx]
        _, uniq_lines_per_cta = np.unique(np.sort(uniq_cta_of_pairs),
                                          return_counts=True)
        # Thrash: when a CTA's working set exceeds its capacity share, the
        # overflowing fraction of its re-accesses also misses.
        cap = self.capacity_lines
        reaccesses = accesses_per_cta - uniq_lines_per_cta
        overflow = np.maximum(0.0, 1.0 - cap / np.maximum(uniq_lines_per_cta, 1))
        thrash = (reaccesses * overflow).sum()
        misses = int(unique_pairs + round(float(thrash)))
        misses = min(misses, texel_reads)
        hits = texel_reads - misses
        return TextureCacheStats(
            requests=requests,
            texel_reads=texel_reads,
            hits=hits,
            misses=misses,
            miss_bytes=float(misses * self.line_bytes),
        )
