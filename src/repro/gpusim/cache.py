"""Texture-cache model with a block-linear (2-D tiled) line layout.

GPU texture caches differ from ordinary data caches in two ways the paper's
optimisation exploits:

1. texels are stored *block-linear*: one cache line covers a small 2-D tile
   of texels, so spatially close fetches — even with fractional, irregular
   offsets — hit the same line;
2. the cache is optimised for streaming: per-CTA working sets are small and
   reuse is dominated by intra-tile locality.

The model is trace-driven but CTA-granular for speed: fetched texel
coordinates are mapped to line IDs, grouped by the CTA (output tile) that
issued them, and each CTA's misses are its unique lines — plus a thrashing
term when a CTA's working set exceeds the per-SM capacity share.  This is
what produces the tile-size sensitivity of paper Fig. 8: tiny tiles re-fetch
halo texels across CTAs, oversized tiles overflow the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class TextureCacheStats:
    """Aggregate results of a cache simulation."""

    requests: int          # bilinear fetch instructions (quads)
    texel_reads: int       # corner texels touched (≤ 4 per request)
    hits: int              # texel reads served by the cache
    misses: int            # line fills
    miss_bytes: float      # DRAM traffic caused by fills

    @property
    def hit_rate(self) -> float:
        if self.texel_reads == 0:
            return 0.0
        return 100.0 * self.hits / self.texel_reads

    def scaled(self, factor: float) -> "TextureCacheStats":
        # Rounding each counter independently can break the invariant
        # hits + misses == texel_reads; round reads and misses, then
        # *derive* hits so the identity survives any factor.
        texel_reads = int(round(self.texel_reads * factor))
        misses = min(int(round(self.misses * factor)), texel_reads)
        return TextureCacheStats(
            requests=int(round(self.requests * factor)),
            texel_reads=texel_reads,
            hits=texel_reads - misses,
            misses=misses,
            miss_bytes=self.miss_bytes * factor,
        )


@dataclass(frozen=True)
class TexelLineTrace:
    """The tile-independent half of a cache simulation, computed once.

    ``simulate()`` does two separable things: (1) map every in-bounds
    bilinear corner texel to a block-linear cache line, and (2) group those
    lines by issuing CTA and count per-CTA misses.  Step 1 depends only on
    the sampling positions and the texture geometry; step 2 is the only
    part the CTA tiling changes.  A ``TexelLineTrace`` captures step 1 so a
    tile sweep re-runs just the cheap regrouping
    (:meth:`TextureCacheModel.simulate_retiled`) per candidate tile.

    ``lines``/``pixel`` are parallel arrays over the valid corner texels in
    the exact order ``simulate(corners=True)`` visits them.  The remaining
    fields cache pixel-granular reductions the per-tile accounting needs —
    neighbouring taps of one output pixel mostly share lines, so the
    deduplicated ``(pixel, line)`` pair list is several times shorter than
    the raw trace, and per-tile work shrinks with it.
    """

    lines: np.ndarray        # (M,) block-linear line id per valid corner texel
    pixel: np.ndarray        # (M,) output-pixel index that issued the fetch
    requests: int            # bilinear fetches in the trace (pre-expansion)
    #: unique (pixel, line) pairs of the trace, pixel-major ascending
    dedup_pixel: np.ndarray
    dedup_lines: np.ndarray
    #: raw texel reads issued per output pixel (length = max pixel + 1)
    pixel_counts: np.ndarray
    #: line-id space bound: every id in ``lines`` is < ``line_space``
    line_space: int

    @property
    def texel_reads(self) -> int:
        return int(self.lines.size)


class TextureCacheModel:
    """CTA-granular texture cache simulation.

    Parameters
    ----------
    spec:
        Device description (cache capacity, line size, line tile shape).
    concurrent_layers:
        How many texture layers (feature-map channels) stream through one
        SM's cache concurrently; the per-CTA capacity share divides by it.
        The deformable kernels iterate channels of one deformable group in
        the inner loop, so a handful of layers are simultaneously live.
    """

    def __init__(self, spec: DeviceSpec, concurrent_layers: int = 4):
        self.spec = spec
        self.concurrent_layers = max(1, concurrent_layers)
        self.line_bytes = spec.tex_cache_line_bytes
        self.line_th, self.line_tw = spec.tex_line_tile
        capacity_bytes = spec.tex_cache_kb_per_sm * 1024
        self.capacity_lines = max(
            1, capacity_bytes // self.line_bytes // self.concurrent_layers)

    # ------------------------------------------------------------------
    def line_ids(self, y: np.ndarray, x: np.ndarray, tex_w: int) -> np.ndarray:
        """Map texel coordinates to block-linear line IDs."""
        lines_per_row = -(-tex_w // self.line_tw)  # ceil
        return (y // self.line_th) * lines_per_row + (x // self.line_tw)

    def simulate(self, y: np.ndarray, x: np.ndarray, cta_ids: np.ndarray,
                 tex_h: int, tex_w: int, corners: bool = True
                 ) -> TextureCacheStats:
        """Simulate a fetch trace for one texture layer.

        ``y``/``x``: int arrays of fetch positions (top-left corner of the
        bilinear quad when ``corners=True``); ``cta_ids``: the CTA each fetch
        belongs to.  Out-of-bounds corners are dropped (border texels are not
        read from memory — the paper notes boundary pixels are substituted
        as zero, not fetched).
        """
        y = np.asarray(y, dtype=np.int64).ravel()
        x = np.asarray(x, dtype=np.int64).ravel()
        cta = np.asarray(cta_ids, dtype=np.int64).ravel()
        if not (y.size == x.size == cta.size):
            raise ValueError("y, x, cta_ids must have equal length")
        requests = y.size
        if corners:
            # Expand each bilinear fetch to its (up to) four corner texels.
            y4 = np.concatenate([y, y, y + 1, y + 1])
            x4 = np.concatenate([x, x + 1, x, x + 1])
            cta4 = np.concatenate([cta] * 4)
        else:
            y4, x4, cta4 = y, x, cta
        valid = (y4 >= 0) & (y4 < tex_h) & (x4 >= 0) & (x4 < tex_w)
        y4, x4, cta4 = y4[valid], x4[valid], cta4[valid]
        texel_reads = int(y4.size)
        if texel_reads == 0:
            return TextureCacheStats(requests, 0, 0, 0, 0.0)

        lines = self.line_ids(y4, x4, tex_w)
        return self._account(lines, cta4, requests, texel_reads)

    def precompute(self, y: np.ndarray, x: np.ndarray, pixel: np.ndarray,
                   tex_h: int, tex_w: int, corners: bool = True
                   ) -> TexelLineTrace:
        """One-pass step 1: the texel→line mapping of a fetch trace.

        Same corner expansion and bounds filtering as :meth:`simulate`, but
        tagged with the issuing *output pixel* instead of a CTA, so any CTA
        tiling can be applied afterwards via :meth:`simulate_retiled`.
        """
        y = np.asarray(y, dtype=np.int64).ravel()
        x = np.asarray(x, dtype=np.int64).ravel()
        pixel = np.asarray(pixel, dtype=np.int64).ravel()
        if not (y.size == x.size == pixel.size):
            raise ValueError("y, x, pixel must have equal length")
        requests = y.size
        if corners:
            y4 = np.concatenate([y, y, y + 1, y + 1])
            x4 = np.concatenate([x, x + 1, x, x + 1])
            pix4 = np.concatenate([pixel] * 4)
        else:
            y4, x4, pix4 = y, x, pixel
        valid = (y4 >= 0) & (y4 < tex_h) & (x4 >= 0) & (x4 < tex_w)
        y4, x4, pix4 = y4[valid], x4[valid], pix4[valid]
        if y4.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return TexelLineTrace(lines=empty, pixel=pix4, requests=requests,
                                  dedup_pixel=empty, dedup_lines=empty,
                                  pixel_counts=empty, line_space=1)
        lines = self.line_ids(y4, x4, tex_w)
        # Pixel-granular reductions, paid once per trace: the deduplicated
        # (pixel, line) pair set and the raw per-pixel read counts are all
        # any CTA grouping of pixels needs.
        line_space = int(lines.max()) + 1
        pair_key = np.unique(pix4 * line_space + lines)
        return TexelLineTrace(lines=lines, pixel=pix4, requests=requests,
                              dedup_pixel=pair_key // line_space,
                              dedup_lines=pair_key % line_space,
                              pixel_counts=np.bincount(pix4),
                              line_space=line_space)

    def simulate_retiled(self, trace: TexelLineTrace,
                         cta_of_pixel: np.ndarray) -> TextureCacheStats:
        """One-pass step 2: re-bucket a precomputed trace under a tiling.

        ``cta_of_pixel`` maps output-pixel index → CTA id for the candidate
        tile (see :func:`repro.gpusim.trace.cta_ids_for_tile`).  The result
        is bit-identical to ``simulate()`` run on the same trace with that
        tiling, at a fraction of the cost: the corner expansion, bounds
        filtering and line mapping are never repeated, and the accounting
        runs counting-based over the trace's deduplicated (pixel, line)
        pairs instead of re-sorting the raw texel stream — the unique-pair
        set and per-CTA counts are invariant under the pixel→CTA grouping,
        so every counter (and the thrash term, summed over the identical
        per-CTA arrays) comes out exactly equal to ``_account``'s.
        """
        if trace.texel_reads == 0:
            return TextureCacheStats(trace.requests, 0, 0, 0, 0.0)
        cta_of_pixel = np.asarray(cta_of_pixel, dtype=np.int64)
        num_ctas = int(cta_of_pixel.max()) + 1
        space = trace.line_space
        # Raw per-CTA access counts: sum the per-pixel read counts of the
        # pixels each CTA owns (integer-exact).
        accesses = np.zeros(num_ctas, dtype=np.int64)
        np.add.at(accesses, cta_of_pixel[:trace.pixel_counts.size],
                  trace.pixel_counts)
        pair_key = cta_of_pixel[trace.dedup_pixel] * space + trace.dedup_lines
        bins = num_ctas * space
        if bins <= max(1 << 24, 16 * pair_key.size):
            seen = np.bincount(pair_key, minlength=bins) > 0
            unique_pairs = int(seen.sum())
            uniq_per_cta = seen.reshape(num_ctas, space).sum(axis=1)
        else:   # key space too sparse to tabulate: sort the deduped pairs
            uniq = np.unique(pair_key)
            unique_pairs = uniq.size
            uniq_per_cta = np.bincount(uniq // space, minlength=num_ctas)
        present = accesses > 0
        return self._finish(unique_pairs, accesses[present],
                            uniq_per_cta[present].astype(np.int64),
                            trace.requests, trace.texel_reads)

    def _account(self, lines: np.ndarray, cta4: np.ndarray, requests: int,
                 texel_reads: int) -> TextureCacheStats:
        """Reference miss accounting over the raw (line, CTA) stream."""
        # Unique (cta, line) pairs = compulsory misses per CTA.
        key = cta4 * (lines.max() + 1) + lines
        uniq_keys, first_idx = np.unique(key, return_index=True)
        unique_pairs = uniq_keys.size
        # Per-CTA access and unique-line counts for the thrashing correction.
        cta_sorted = np.sort(cta4)
        cta_vals, accesses_per_cta = np.unique(cta_sorted, return_counts=True)
        uniq_cta_of_pairs = cta4[first_idx]
        _, uniq_lines_per_cta = np.unique(np.sort(uniq_cta_of_pairs),
                                          return_counts=True)
        return self._finish(unique_pairs, accesses_per_cta,
                            uniq_lines_per_cta, requests, texel_reads)

    def _finish(self, unique_pairs: int, accesses_per_cta: np.ndarray,
                uniq_lines_per_cta: np.ndarray, requests: int,
                texel_reads: int) -> TextureCacheStats:
        """Turn per-CTA counts into stats (shared by both accountings)."""
        # Thrash: when a CTA's working set exceeds its capacity share, the
        # overflowing fraction of its re-accesses also misses.
        cap = self.capacity_lines
        reaccesses = accesses_per_cta - uniq_lines_per_cta
        overflow = np.maximum(0.0, 1.0 - cap / np.maximum(uniq_lines_per_cta, 1))
        thrash = (reaccesses * overflow).sum()
        misses = int(unique_pairs + round(float(thrash)))
        misses = min(misses, texel_reads)
        hits = texel_reads - misses
        return TextureCacheStats(
            requests=requests,
            texel_reads=texel_reads,
            hits=hits,
            misses=misses,
            miss_bytes=float(misses * self.line_bytes),
        )
