"""Kernel launch / occupancy / latency model.

The latency estimate is a three-resource roofline with imperfect overlap:

``time = launch + max(T_compute, T_dram, T_tex) + (1 − overlap)·(sum − max)``

* ``T_compute`` — FLOPs against the SM FP32 pipes, derated by achieved
  occupancy (latency hiding fails below ~50 % occupancy);
* ``T_dram``   — all DRAM traffic (coalesced transactions + texture misses
  + output stores) against achievable bandwidth;
* ``T_tex``    — filtered texel fetches against the texture units' quad
  throughput (the resource the tex2D kernels lean on instead of FLOPs).

Wave quantisation (the tail wave of CTAs underfilling the SMs) is also
modelled — it is what punishes badly chosen tile sizes in paper Fig. 8
even when cache behaviour is fine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.profiler import KernelStats


@dataclass(frozen=True)
class LaunchConfig:
    """A CUDA-style launch: number of CTAs and threads per CTA."""

    grid: int
    block: int

    def __post_init__(self):
        if self.grid <= 0 or self.block <= 0:
            raise ValueError("grid and block must be positive")


def occupancy(launch: LaunchConfig, spec: DeviceSpec) -> float:
    """Achieved occupancy: resident threads / max threads per SM."""
    if launch.block > spec.max_threads_per_block:
        raise ValueError(
            f"block of {launch.block} exceeds device max "
            f"{spec.max_threads_per_block}")
    # Round the block to warp granularity (hardware allocates whole warps).
    warps_per_block = -(-launch.block // spec.warp_size)
    alloc_threads = warps_per_block * spec.warp_size
    blocks_by_threads = spec.max_threads_per_sm // alloc_threads
    resident_blocks = min(blocks_by_threads, spec.max_blocks_per_sm)
    if resident_blocks == 0:
        return 0.0
    resident_threads = resident_blocks * alloc_threads
    return min(1.0, resident_threads / spec.max_threads_per_sm)


def wave_efficiency(launch: LaunchConfig, spec: DeviceSpec) -> float:
    """Utilisation loss from the final partial wave of CTAs."""
    warps_per_block = -(-launch.block // spec.warp_size)
    alloc_threads = warps_per_block * spec.warp_size
    blocks_per_sm = max(1, min(spec.max_threads_per_sm // alloc_threads,
                               spec.max_blocks_per_sm))
    blocks_per_wave = blocks_per_sm * spec.num_sms
    waves = launch.grid / blocks_per_wave
    full_waves = int(waves)
    frac = waves - full_waves
    if waves <= 0:
        return 1.0
    if frac == 0:
        return 1.0
    # The tail wave takes a full wave's time but does `frac` of the work.
    return waves / (full_waves + 1)


@dataclass
class KernelCost:
    """Resource totals for one launch, fed to :func:`estimate_time_ms`."""

    flops: float = 0.0
    dram_bytes: float = 0.0
    #: sector traffic absorbed by the L2 (scattered-gather over-fetch);
    #: costed against the L2 bandwidth, not DRAM.
    l2_bytes: float = 0.0
    tex_fetches: float = 0.0
    #: rate divisor for the texture fetches (4 for fp32 bilinear filtering)
    tex_rate_divisor: float = 1.0
    #: per-CTA fixed setup cost (index math, descriptor loads, sync) —
    #: what makes very small tiles expensive in paper Fig. 8
    cta_prologue_cycles: float = 0.0
    #: fraction of peak FLOP throughput this kernel's inner loop can reach
    #: (GEMM ≈ 0.75; scalar gather/interpolate code ≈ 0.25)
    compute_efficiency: float = 0.6


def estimate_time_ms(cost: KernelCost, launch: LaunchConfig,
                     spec: DeviceSpec) -> float:
    """Latency of one kernel launch under the overlap roofline."""
    occ = occupancy(launch, spec)
    wave = wave_efficiency(launch, spec)
    # Below ~50% occupancy, latency hiding degrades roughly linearly.
    lat_hide = min(1.0, occ / 0.5)
    util = max(1e-3, lat_hide * wave)

    t_compute = cost.flops / (
        spec.peak_gflops * 1e9 * cost.compute_efficiency * util) * 1e3
    t_dram = cost.dram_bytes / (spec.effective_dram_gbps * 1e9) * 1e3
    t_l2 = cost.l2_bytes / (
        spec.effective_dram_gbps * spec.l2_bandwidth_ratio * 1e9) * 1e3
    t_tex = cost.tex_fetches * cost.tex_rate_divisor / (
        spec.peak_tex_gtexels * 1e9 * max(util, 0.25)) * 1e3

    parts = sorted((t_compute, max(t_dram, t_l2), t_tex))
    dominant = parts[-1]
    hidden = parts[0] + parts[1]
    # CTA prologues serialise per SM (they cannot overlap with the block's
    # own work): grid/num_sms blocks each pay the fixed setup cycles.
    t_prologue = (launch.grid / spec.num_sms * cost.cta_prologue_cycles
                  / (spec.core_clock_ghz * 1e9) * 1e3)
    return (spec.kernel_launch_overhead_us / 1e3 + t_prologue
            + dominant + (1.0 - spec.overlap) * hidden)


def gemm_cost(m: int, n: int, k: int, dtype_bytes: int = 4,
              efficiency: float = 0.75) -> KernelCost:
    """Cost of a C = A·B GEMM (the filter-times-columns step of im2col conv).

    Traffic assumes a tiled implementation streaming each operand roughly
    once (cuBLAS-like), which is accurate for the fat matrices conv
    produces.
    """
    flops = 2.0 * m * n * k
    bytes_moved = dtype_bytes * (m * k + k * n + m * n)
    return KernelCost(flops=flops, dram_bytes=bytes_moved,
                      compute_efficiency=efficiency)


def merge_costs(*costs: KernelCost) -> KernelCost:
    """Sum resource totals (efficiency weighted by FLOP share)."""
    total = KernelCost()
    flops = sum(c.flops for c in costs)
    total.flops = flops
    total.dram_bytes = sum(c.dram_bytes for c in costs)
    total.tex_fetches = sum(c.tex_fetches for c in costs)
    if flops > 0:
        total.compute_efficiency = sum(
            c.compute_efficiency * c.flops for c in costs) / flops
    return total


def stats_from_cost(name: str, cost: KernelCost, launch: LaunchConfig,
                    spec: DeviceSpec) -> KernelStats:
    """Convenience: wrap a cost estimate into a KernelStats record."""
    return KernelStats(
        name=name,
        duration_ms=estimate_time_ms(cost, launch, spec),
        flop_count_sp=cost.flops,
        dram_read_bytes=cost.dram_bytes,
    )
