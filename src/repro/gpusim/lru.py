"""Exact set-associative LRU cache simulation.

The production texture-cache model (:mod:`repro.gpusim.cache`) is
CTA-granular and analytic for speed; this module is its *validation
oracle*: a cycle-accurate-in-order, set-associative LRU simulator that
replays a texel trace exactly.  Tests check that the analytic model's
hit-rate predictions track the exact simulation across tile sizes and
cache capacities (the agreement that justifies using the fast model in
Fig. 8's tile search).

The simulator is vectorised per set where possible but fundamentally
sequential; use it on small traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.gpusim.cache import TextureCacheStats
from repro.gpusim.device import DeviceSpec


@dataclass(frozen=True)
class LRUCacheConfig:
    """Geometry of the exact cache."""

    capacity_bytes: int
    line_bytes: int = 128
    ways: int = 4
    #: 2-D texel footprint of a line (block-linear layout)
    line_tile: Tuple[int, int] = (4, 8)

    @property
    def num_lines(self) -> int:
        return max(1, self.capacity_bytes // self.line_bytes)

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.ways)

    @classmethod
    def from_device(cls, spec: DeviceSpec,
                    concurrent_layers: int = 1) -> "LRUCacheConfig":
        return cls(
            capacity_bytes=spec.tex_cache_kb_per_sm * 1024
            // max(1, concurrent_layers),
            line_bytes=spec.tex_cache_line_bytes,
            line_tile=tuple(spec.tex_line_tile),
        )


class ExactLRUCache:
    """Replay a texel access trace through a set-associative LRU cache."""

    def __init__(self, config: LRUCacheConfig):
        self.config = config
        ways = config.ways
        sets = config.num_sets
        self._tags = np.full((sets, ways), -1, dtype=np.int64)
        self._stamp = np.zeros((sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def line_ids(self, y: np.ndarray, x: np.ndarray, tex_w: int
                 ) -> np.ndarray:
        th, tw = self.config.line_tile
        lines_per_row = -(-tex_w // tw)
        return (np.asarray(y, dtype=np.int64) // th) * lines_per_row \
            + (np.asarray(x, dtype=np.int64) // tw)

    def access_lines(self, lines: np.ndarray) -> None:
        """Sequentially access a stream of line IDs."""
        sets = self.config.num_sets
        for line in np.asarray(lines, dtype=np.int64).ravel():
            self._clock += 1
            s = int(line % sets)
            row_tags = self._tags[s]
            hit = np.nonzero(row_tags == line)[0]
            if hit.size:
                self.hits += 1
                self._stamp[s, hit[0]] = self._clock
                continue
            self.misses += 1
            victim = int(np.argmin(self._stamp[s]))
            self._tags[s, victim] = line
            self._stamp[s, victim] = self._clock

    def simulate_texels(self, y: np.ndarray, x: np.ndarray, tex_h: int,
                        tex_w: int, corners: bool = True
                        ) -> TextureCacheStats:
        """Replay bilinear fetches (top-left corners given) exactly.

        Matches the analytic model's contract: out-of-bounds corners are
        dropped (border texels are zero-substituted, never fetched).
        """
        y = np.asarray(y, dtype=np.int64).ravel()
        x = np.asarray(x, dtype=np.int64).ravel()
        requests = y.size
        if corners:
            y4 = np.stack([y, y, y + 1, y + 1], axis=1).ravel()
            x4 = np.stack([x, x + 1, x, x + 1], axis=1).ravel()
        else:
            y4, x4 = y, x
        valid = (y4 >= 0) & (y4 < tex_h) & (x4 >= 0) & (x4 < tex_w)
        y4, x4 = y4[valid], x4[valid]
        before_h, before_m = self.hits, self.misses
        self.access_lines(self.line_ids(y4, x4, tex_w))
        hits = self.hits - before_h
        misses = self.misses - before_m
        return TextureCacheStats(
            requests=requests,
            texel_reads=int(y4.size),
            hits=hits,
            misses=misses,
            miss_bytes=float(misses * self.config.line_bytes),
        )
