"""Functional model of the GPU texture unit (paper Section III-B).

Reproduces the *numerics* of CUDA's texture fetch path so the claim that
texture-hardware interpolation "does not result in any negative impact on
accuracy" is testable:

* **layered 2-D textures** — a stack of same-sized layers; DEFCON stores one
  feature-map channel per layer and folds batch into the layer index
  (``batch_idx × channels + c``), subject to the 2048-layer device limit;
* **addressing modes** — border (out-of-bounds reads return zero — exactly
  the deformable-conv boundary rule), clamp, wrap, mirror;
* **filtering modes** — point (nearest) and linear; linear filtering uses
  the documented CUDA behaviour: the sample position is shifted by 0.5 and
  the fractional blend weights are stored in **1.8 fixed point** (8
  fractional bits), so hardware bilinear differs from fp32 software
  bilinear by at most ~2⁻⁸ per coordinate;
* **fp16 coordinate path (tex2D++)** — coordinates quantised to half
  precision before the fetch.  fp16 keeps 10 mantissa bits, more than the
  8 the filtering unit uses, which is why tex2D++ loses no accuracy while
  halving offset-load bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.gpusim.device import DeviceSpec

#: CUDA linear filtering stores blend fractions in 1.8 fixed point.
FIXED_POINT_FRACTION_BITS = 8
_FXP_SCALE = float(1 << FIXED_POINT_FRACTION_BITS)

ADDRESS_MODES = ("border", "clamp", "wrap", "mirror")
FILTER_MODES = ("point", "linear")


@dataclass(frozen=True)
class TextureDescriptor:
    """Read/addressing/filtering configuration of a texture object."""

    address_mode: str = "border"
    filter_mode: str = "linear"
    normalized_coords: bool = False
    #: quantise fetch coordinates to fp16 before filtering (tex2D++)
    fp16_coords: bool = False
    #: store the texels themselves in fp16 — *quantisation*, the thing the
    #: paper contrasts tex2D++ against ("results in an information loss
    #: from input feature maps"); halves texture memory and doubles the
    #: filter rate, at a real numerical cost to the feature map
    fp16_texels: bool = False

    def __post_init__(self):
        if self.address_mode not in ADDRESS_MODES:
            raise ValueError(f"address_mode must be one of {ADDRESS_MODES}")
        if self.filter_mode not in FILTER_MODES:
            raise ValueError(f"filter_mode must be one of {FILTER_MODES}")
        if self.address_mode in ("wrap", "mirror") and not self.normalized_coords:
            raise ValueError(
                "wrap/mirror addressing requires normalized coordinates "
                "(CUDA restriction)")


def quantize_fraction(frac: np.ndarray) -> np.ndarray:
    """Quantise a fractional blend weight to 1.8 fixed point (round-to-nearest)."""
    return np.round(frac * _FXP_SCALE) / _FXP_SCALE


def linear_filter_taps(y: np.ndarray, x: np.ndarray, h: int, w: int,
                       address_mode: str, normalized: bool):
    """The four bilinear taps of CUDA linear filtering, fully resolved.

    ``y``/``x`` are the *texture-space* coordinates (after any fp16
    quantisation).  Returns four ``(iy, jx, weight)`` tuples — resolved
    texel indices plus the 1.8 fixed-point blend weight with the
    out-of-bounds mask already folded in (border reads contribute zero).
    Both the eager fetch path and the fused execution plans consume this
    helper, so their corner numerics can never drift apart.
    """
    # Linear filtering: xB = x − 0.5; i = floor(xB); α = frac(xB) in 1.8
    # fixed point (CUDA Programming Guide, appendix on texture fetching).
    yb = y - 0.5
    xb = x - 0.5
    i0 = np.floor(yb)
    j0 = np.floor(xb)
    alpha = quantize_fraction(yb - i0)
    beta = quantize_fraction(xb - j0)
    i0 = i0.astype(np.int64)
    j0 = j0.astype(np.int64)
    taps = []
    for dy, dx, wq in ((0, 0, (1 - alpha) * (1 - beta)),
                       (0, 1, (1 - alpha) * beta),
                       (1, 0, alpha * (1 - beta)),
                       (1, 1, alpha * beta)):
        iy, ok_y = _apply_address_mode(i0 + dy, h, address_mode, normalized)
        jx, ok_x = _apply_address_mode(j0 + dx, w, address_mode, normalized)
        taps.append((iy, jx, wq * (ok_y & ok_x)))
    return taps


def _apply_address_mode(coord: np.ndarray, extent: int, mode: str,
                        normalized: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve coordinates to texel indices; returns (index, in_bounds)."""
    if normalized:
        if mode == "wrap":
            coord = coord - np.floor(coord)
        elif mode == "mirror":
            f = np.floor(coord)
            frac = coord - f
            coord = np.where(f.astype(np.int64) % 2 == 0, frac, 1.0 - frac)
        coord = coord * extent
    coord = np.asarray(coord)
    if coord.dtype.kind == "f":
        idx = np.floor(coord).astype(np.int64)
    else:
        idx = coord.astype(np.int64)
    if mode in ("wrap", "mirror"):
        # Already folded into [0, extent); clamp guards the extent edge.
        clamped = np.clip(idx, 0, extent - 1)
        return clamped, np.ones_like(coord, dtype=bool)
    if mode == "clamp":
        return np.clip(idx, 0, extent - 1), np.ones_like(coord, dtype=bool)
    # border: out-of-range reads return the border colour (zero).
    in_bounds = (idx >= 0) & (idx <= extent - 1)
    return np.clip(idx, 0, extent - 1), in_bounds


class LayeredTexture2D:
    """A 2-D layered texture bound over a (layers, H, W) array.

    This is the storage construct the paper selects over mipmapped arrays
    and surface memory (Section III-B): every layer is an independent 2-D
    texture of identical extent, so per-channel bilinear interpolation never
    mixes neighbouring channels.
    """

    def __init__(self, data: np.ndarray, desc: TextureDescriptor = None,
                 spec: DeviceSpec = None):
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 3:
            raise ValueError(f"layered texture needs (layers, H, W), got {data.shape}")
        if spec is not None:
            max_h, max_w, max_layers = spec.max_texture_extent
            layers, h, w = data.shape
            if h > max_h or w > max_w or layers > max_layers:
                raise ValueError(
                    f"texture extent {data.shape} exceeds device limit "
                    f"{spec.max_texture_extent} — partition the mini-batch "
                    f"(paper Section III-B)")
        self.desc = desc if desc is not None else TextureDescriptor()
        if self.desc.fp16_texels:
            data = data.astype(np.float16).astype(np.float32)
        self.data = data

    @classmethod
    def from_feature_map(cls, x: np.ndarray, desc: TextureDescriptor = None,
                         spec: DeviceSpec = None) -> "LayeredTexture2D":
        """Bind an (N, C, H, W) feature map: layer index = n·C + c."""
        n, c, h, w = x.shape
        return cls(x.reshape(n * c, h, w), desc=desc, spec=spec)

    @property
    def num_layers(self) -> int:
        return self.data.shape[0]

    @property
    def extent(self) -> Tuple[int, int]:
        return self.data.shape[1:]

    # ------------------------------------------------------------------
    def fetch(self, layer: np.ndarray, y: np.ndarray, x: np.ndarray
              ) -> np.ndarray:
        """``tex2DLayered`` — fetch with the configured addressing/filtering.

        ``layer``/``y``/``x`` are broadcastable arrays; coordinates follow
        CUDA's unnormalised convention where texel centres sit at
        ``i + 0.5``.  Returns filtered values of the broadcast shape.
        """
        desc = self.desc
        h, w = self.extent
        layer = np.asarray(layer, dtype=np.int64)
        y = np.asarray(y, dtype=np.float32)
        x = np.asarray(x, dtype=np.float32)
        if desc.fp16_coords:
            y = y.astype(np.float16).astype(np.float32)
            x = x.astype(np.float16).astype(np.float32)
        layer = np.clip(layer, 0, self.num_layers - 1)

        if desc.filter_mode == "point":
            # Raw coordinates go in — normalisation/wrap scaling must happen
            # before the truncation to a texel index.
            yi, y_ok = _apply_address_mode(y, h, desc.address_mode,
                                           desc.normalized_coords)
            xi, x_ok = _apply_address_mode(x, w, desc.address_mode,
                                           desc.normalized_coords)
            vals = self.data[layer, yi, xi]
            return vals * (y_ok & x_ok)

        taps = linear_filter_taps(y, x, h, w, desc.address_mode,
                                  desc.normalized_coords)
        out = None
        for iy, jx, wq in taps:
            term = wq * self.data[layer, iy, jx]
            out = term if out is None else out + term
        return out

    def fetch_at_pixel_coords(self, layer: np.ndarray, py: np.ndarray,
                              px: np.ndarray) -> np.ndarray:
        """Fetch using *pixel* coordinates (texel i at integer i).

        The deformable-conv kernels compute sampling positions in pixel
        space; CUDA code adds 0.5 before calling ``tex2DLayered`` so the
        hardware's −0.5 shift cancels.  This helper applies that shift.
        """
        return self.fetch(layer, py + 0.5, px + 0.5)


def texture_footprint_bytes(x_shape: Tuple[int, int, int, int],
                            dtype_bytes: int = 4) -> int:
    """Bytes needed to stage an (N, C, H, W) feature map as a layered texture."""
    n, c, h, w = x_shape
    return n * c * h * w * dtype_bytes


def fits_texture_limits(x_shape: Tuple[int, int, int, int],
                        spec: DeviceSpec) -> bool:
    """Check the paper's layered-texture constraint: N·C ≤ 2048 etc."""
    n, c, h, w = x_shape
    max_h, max_w, max_layers = spec.max_texture_extent
    return h <= max_h and w <= max_w and n * c <= max_layers
