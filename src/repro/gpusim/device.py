"""GPU device specifications for the performance model.

The paper evaluates on an NVIDIA Jetson AGX Xavier (8-SM Volta iGPU behind
a ~137 GB/s LPDDR4x bus) and an RTX 2080 Ti (68-SM Turing, 616 GB/s GDDR6).
The numbers below are the public architectural parameters; the handful of
model-calibration constants (overlap factor, launch overhead) are estimated
once and shared by every kernel, so relative comparisons are never tuned
per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters consumed by the cost and cache models."""

    name: str
    num_sms: int
    core_clock_ghz: float
    #: FP32 lanes (CUDA cores) per SM; peak FLOP/clk/SM = 2 × lanes (FMA).
    fp32_lanes_per_sm: int
    dram_bandwidth_gbps: float
    #: Minimum global-memory transaction granularity (one sector).
    sector_bytes: int = 32
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    #: Texture units per SM and bilinear-filtered texel rate per unit/clock.
    tex_units_per_sm: int = 4
    tex_texels_per_clock_per_unit: float = 1.0
    #: Dedicated texture/L1 cache available to texture fetches, per SM.
    tex_cache_kb_per_sm: int = 32
    #: Texture cache line size in bytes (covers a 2-D texel tile).
    tex_cache_line_bytes: int = 128
    #: 2-D footprint of one cache line in texels (block-linear layout).
    tex_line_tile: tuple = (4, 8)
    #: L2 cache size (absorbs sector over-fetch from scattered gathers).
    l2_kb: int = 4096
    #: L2 bandwidth as a multiple of effective DRAM bandwidth.
    l2_bandwidth_ratio: float = 2.5
    #: Average times each cached input byte reaches DRAM across the K taps
    #: of a deformable gather (L2 reuse bound for the compulsory traffic).
    gather_dram_reuse: float = 2.0
    #: Calibrated throughput factor for scattered sector traffic through
    #: the L2: effective scatter bandwidth = DRAM_eff × l2_ratio × this.
    #: Values > 1 mean the L2 merges duplicate sectors from neighbouring
    #: warps so effective throughput exceeds the raw transaction rate;
    #: small-L2 edge parts sit near (or below) 1.
    scattered_penalty: float = 1.2
    #: FP32 textures filter at reduced rate (1/4 on Volta/Turing); fp16
    #: texels would filter at 1/2 rate.
    tex_fp32_rate_divisor: int = 4
    #: Channels a texture CTA processes per offset re-read (the offset
    #: stream is re-loaded once per channel block).
    offset_channel_block: int = 4
    #: Fixed per-launch overhead (driver + dispatch), microseconds.
    kernel_launch_overhead_us: float = 8.0
    #: Extra launches the stock framework path (PyTorch ATen dispatch,
    #: per-sample im2col, auxiliary reshape/fill kernels) issues per
    #: deformable op compared to the fused custom kernel.
    framework_extra_launches: int = 4
    #: Fraction of the lower of (compute, memory) hidden under the higher —
    #: 1.0 is a perfect roofline; real kernels overlap imperfectly.
    overlap: float = 0.85
    #: Achievable fraction of peak DRAM bandwidth for streaming loads.
    dram_efficiency: float = 0.75
    #: Layered-texture limits (height, width, layers) — paper Section III-B.
    max_texture_extent: tuple = (32768, 32768, 2048)

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOP/s (FMA counted as two FLOPs)."""
        return (self.num_sms * self.fp32_lanes_per_sm * 2
                * self.core_clock_ghz)

    @property
    def peak_tex_gtexels(self) -> float:
        """Peak bilinear texel fetch rate, GTexel/s."""
        return (self.num_sms * self.tex_units_per_sm
                * self.tex_texels_per_clock_per_unit * self.core_clock_ghz)

    @property
    def effective_dram_gbps(self) -> float:
        return self.dram_bandwidth_gbps * self.dram_efficiency

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: Jetson AGX Xavier: Volta iGPU, 8 SMs × 64 cores @ 1.377 GHz, LPDDR4x
#: shared with the CPU — the memory-starved edge device of the paper.
XAVIER = DeviceSpec(
    name="jetson-agx-xavier",
    num_sms=8,
    core_clock_ghz=1.377,
    fp32_lanes_per_sm=64,
    dram_bandwidth_gbps=137.0,
    tex_units_per_sm=4,
    tex_cache_kb_per_sm=32,
    l2_kb=512,
    l2_bandwidth_ratio=3.5,
    scattered_penalty=1.2,   # small L2: little duplicate-sector merging
    tex_fp32_rate_divisor=4,
    kernel_launch_overhead_us=15.0,  # Jetson launch latency is higher
    framework_extra_launches=4,      # PyTorch dispatch dominates small ops
    dram_efficiency=0.65,            # LPDDR4x shared with CPU traffic
)

#: RTX 2080 Ti: Turing TU102, 68 SMs × 64 cores @ 1.545 GHz boost, GDDR6.
RTX_2080TI = DeviceSpec(
    name="rtx-2080ti",
    num_sms=68,
    core_clock_ghz=1.545,
    fp32_lanes_per_sm=64,
    dram_bandwidth_gbps=616.0,
    tex_units_per_sm=4,
    tex_cache_kb_per_sm=64,
    l2_kb=5632,
    l2_bandwidth_ratio=3.5,
    scattered_penalty=2.2,   # 5.5 MB L2 absorbs most sector over-fetch
    tex_fp32_rate_divisor=3,
    offset_channel_block=8,
    kernel_launch_overhead_us=8.0,
    framework_extra_launches=2,
    dram_efficiency=0.8,
)

#: Jetson AGX Orin (Ampere iGPU): what-if extrapolation — architectural
#: parameters are public; the calibrated factors are inherited from the
#: Xavier (same product family, shared LPDDR bus), so treat results as
#: projections rather than validated reproductions.
ORIN = XAVIER.with_overrides(
    name="jetson-agx-orin",
    num_sms=16,
    core_clock_ghz=1.3,
    fp32_lanes_per_sm=128,
    dram_bandwidth_gbps=204.8,
    l2_kb=4096,
    scattered_penalty=1.6,   # 8× larger L2 than Xavier merges more sectors
)

#: RTX 3090 (Ampere GA102): what-if extrapolation with the 2080 Ti's
#: calibrated factors (same discrete-GDDR class).
RTX_3090 = RTX_2080TI.with_overrides(
    name="rtx-3090",
    num_sms=82,
    core_clock_ghz=1.695,
    fp32_lanes_per_sm=128,
    dram_bandwidth_gbps=936.0,
    l2_kb=6144,
)

DEVICES = {spec.name: spec
           for spec in (XAVIER, RTX_2080TI, ORIN, RTX_3090)}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by name (aliases: 'xavier', '2080ti')."""
    aliases = {
        "xavier": "jetson-agx-xavier",
        "agx": "jetson-agx-xavier",
        "orin": "jetson-agx-orin",
        "2080ti": "rtx-2080ti",
        "rtx2080ti": "rtx-2080ti",
        "3090": "rtx-3090",
    }
    key = aliases.get(name.lower(), name.lower())
    if key not in DEVICES:
        raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}")
    return DEVICES[key]
