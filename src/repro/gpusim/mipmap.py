"""Mipmapped arrays — the texture storage the paper considers and rejects.

Section III-B discusses two layered storage options: 2-D layered textures
(chosen) and mipmapped arrays (rejected).  A mipmap is a pre-computed
pyramid of progressively half-resolution images; each level is built from
the previous one, and fetches sample one (or two, with trilinear
filtering) levels.  For deformable convolution this is the wrong
construct: the offsets address the *full-resolution* feature map, and any
fetch served from level ℓ > 0 returns a low-pass-filtered value — exactly
the resolution loss the paper avoids.

The model exists so that the design choice is executable, not just
asserted: tests demonstrate that level-0 fetches match the layered
texture, that higher levels lose high-frequency content, and that the
pyramid build cost (the "each layer must be loaded and computed using the
previous layer" overhead the paper cites) is real and counted.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.gpusim.texture import LayeredTexture2D, TextureDescriptor


def downsample_2x2(img: np.ndarray) -> np.ndarray:
    """One mip level: 2×2 box filter (the standard mip chain build)."""
    h, w = img.shape[-2:]
    h2, w2 = max(1, h // 2), max(1, w // 2)
    trimmed = img[..., : h2 * 2, : w2 * 2]
    return trimmed.reshape(*img.shape[:-2], h2, 2, w2, 2).mean(axis=(-3, -1))


class MipmappedTexture2D:
    """A mip pyramid over a single-layer 2-D texture."""

    def __init__(self, data: np.ndarray, levels: int = None,
                 desc: TextureDescriptor = None):
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2:
            raise ValueError("mipmapped texture expects a single 2-D image")
        max_levels = int(np.floor(np.log2(max(1, min(data.shape))))) + 1
        levels = max_levels if levels is None else min(levels, max_levels)
        if levels < 1:
            raise ValueError("need at least one mip level")
        self.levels: List[np.ndarray] = [data]
        #: FLOPs spent building the pyramid — the paper's objection that
        #: "each layer must be loaded and computed using the previous layer"
        self.build_flops = 0
        for _ in range(levels - 1):
            nxt = downsample_2x2(self.levels[-1])
            # 4 reads + 3 adds + 1 mul per output texel
            self.build_flops += int(4 * nxt.size)
            self.levels.append(nxt.astype(np.float32))
        self.desc = desc if desc is not None else TextureDescriptor()
        self._level_textures = [LayeredTexture2D(lvl[None], desc=self.desc)
                                for lvl in self.levels]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def extent(self, level: int) -> Tuple[int, int]:
        return self.levels[level].shape

    def fetch_level(self, level: int, py: np.ndarray, px: np.ndarray
                    ) -> np.ndarray:
        """``tex2DLod`` — fetch from one explicit mip level.

        Coordinates are in level-0 pixel space and are scaled down to the
        selected level (which is what loses resolution for ℓ > 0).
        """
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} outside [0, {self.num_levels})")
        scale = 2.0 ** level
        zeros = np.zeros_like(np.asarray(py, dtype=np.int64))
        return self._level_textures[level].fetch_at_pixel_coords(
            zeros, (np.asarray(py, dtype=np.float32) + 0.5) / scale - 0.5,
            (np.asarray(px, dtype=np.float32) + 0.5) / scale - 0.5)

    def fetch_trilinear(self, py: np.ndarray, px: np.ndarray,
                        lod: float) -> np.ndarray:
        """Trilinear filtering: blend the two mip levels around ``lod``."""
        lod = float(np.clip(lod, 0.0, self.num_levels - 1))
        lo = int(np.floor(lod))
        hi = min(lo + 1, self.num_levels - 1)
        frac = lod - lo
        v_lo = self.fetch_level(lo, py, px)
        if hi == lo or frac == 0.0:
            return v_lo
        return (1.0 - frac) * v_lo + frac * self.fetch_level(hi, py, px)
