"""nvprof-style counters (paper Fig. 10).

`KernelStats` carries the metrics the paper inspects:

* ``flop_count_sp`` → the MFLOP bars (≈4× lower for tex2D because the
  interpolation arithmetic moves into the texture unit);
* ``gld_efficiency`` / ``gld_transactions_per_request`` → coalescing quality
  (100 % for the texture kernels: their only global loads are the coalesced
  offset/output streams);
* ``tex_cache_requests`` / ``tex_cache_hit_rate`` → texture path utilisation
  (zero for the PyTorch baseline, which never touches the texture units).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List


@dataclass
class KernelStats:
    """Counters for one simulated kernel launch."""

    name: str = ""
    duration_ms: float = 0.0
    flop_count_sp: float = 0.0
    #: global load requests (one per warp-level load instruction)
    gld_requests: float = 0.0
    #: 32-byte sectors actually transferred for those requests
    gld_transactions: float = 0.0
    #: bytes the program asked for (useful bytes)
    gld_bytes_requested: float = 0.0
    tex_cache_requests: float = 0.0
    #: corner texel reads behind those requests (≤ 4 per bilinear request)
    tex_texel_reads: float = 0.0
    tex_cache_hits: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0

    @property
    def mflop(self) -> float:
        return self.flop_count_sp / 1e6

    @property
    def gld_transactions_per_request(self) -> float:
        if self.gld_requests == 0:
            return 0.0
        return self.gld_transactions / self.gld_requests

    @property
    def gld_efficiency(self) -> float:
        """Requested bytes / transferred bytes, as a percentage (nvprof)."""
        moved = self.gld_transactions * 32.0
        if moved == 0:
            return 100.0
        return min(100.0, 100.0 * self.gld_bytes_requested / moved)

    @property
    def tex_cache_hit_rate(self) -> float:
        if self.tex_texel_reads == 0:
            return 0.0
        return 100.0 * self.tex_cache_hits / self.tex_texel_reads

    def merged(self, other: "KernelStats") -> "KernelStats":
        """Counter-wise sum (durations add; ratios recomputed on demand).

        The result's ``name`` only claims a kernel identity when both
        operands agree (or one is unnamed): an aggregate of two *different*
        kernels is labelled with both, so it can never masquerade as either.
        """
        if self.name == other.name or not other.name:
            name = self.name
        elif not self.name:
            name = other.name
        else:
            name = f"{self.name}+{other.name}"
        out = KernelStats(name=name)
        for f in fields(KernelStats):
            if f.name == "name":
                continue
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out


@dataclass
class ProfileLog:
    """Accumulates per-kernel stats across a model inference (nvprof trace)."""

    records: List[KernelStats] = field(default_factory=list)

    def add(self, stats: KernelStats) -> None:
        self.records.append(stats)

    @property
    def total_ms(self) -> float:
        return sum(r.duration_ms for r in self.records)

    def by_name(self) -> Dict[str, KernelStats]:
        """Aggregate counters per kernel name.

        Every returned row is a fresh object — including single-occurrence
        names, which previously aliased the live record, so a caller
        mutating the aggregate silently corrupted the log.
        """
        agg: Dict[str, KernelStats] = {}
        for r in self.records:
            if r.name in agg:
                agg[r.name] = agg[r.name].merged(r)
            else:
                agg[r.name] = replace(r)
        return agg

    def summary_rows(self) -> List[dict]:
        """nvprof-like table: one dict per kernel name."""
        rows = []
        for name, s in sorted(self.by_name().items()):
            rows.append({
                "kernel": name,
                "time_ms": round(s.duration_ms, 4),
                "mflop": round(s.mflop, 2),
                "gld_efficiency_pct": round(s.gld_efficiency, 1),
                "gld_transactions_per_request": round(
                    s.gld_transactions_per_request, 2),
                "tex_requests": int(s.tex_cache_requests),
                "tex_hit_rate_pct": round(s.tex_cache_hit_rate, 1),
            })
        return rows
