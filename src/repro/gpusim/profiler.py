"""nvprof-style counters (paper Fig. 10).

`KernelStats` carries the metrics the paper inspects:

* ``flop_count_sp`` → the MFLOP bars (≈4× lower for tex2D because the
  interpolation arithmetic moves into the texture unit);
* ``gld_efficiency`` / ``gld_transactions_per_request`` → coalescing quality
  (100 % for the texture kernels: their only global loads are the coalesced
  offset/output streams);
* ``tex_cache_requests`` / ``tex_cache_hit_rate`` → texture path utilisation
  (zero for the PyTorch baseline, which never touches the texture units).

Every record also carries its **attribution**: which model layer launched
it (``layer`` — a dotted module name threaded down from
:class:`~repro.deform.layers.DeformConv2d` by the engine) and the layer
geometry (``geometry`` — a ``LayerConfig.label()``).  ``by_layer()`` turns
that into the paper's Table II/IV per-layer breakdown.

:class:`ProfileLog` is safe under concurrent engine use and keeps memory
bounded: when the live record window exceeds ``max_records``, the oldest
half rolls over into exact per-(kernel, layer, geometry) aggregates —
``total_ms``, ``by_name()`` and ``by_layer()`` stay exact forever, only
the individual old records are no longer addressable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, List, Optional, Tuple

#: Fields that label a record rather than count something; ``merged()``
#: reconciles them instead of summing.
_LABEL_FIELDS = ("name", "layer", "geometry")


def _merge_attribution(a: str, b: str) -> str:
    """An aggregate only claims an attribution both operands agree on."""
    if a == b or not b:
        return a
    if not a:
        return b
    return ""


@dataclass
class KernelStats:
    """Counters for one simulated kernel launch."""

    name: str = ""
    #: dotted model-layer name that launched this kernel ("" = unattributed)
    layer: str = ""
    #: geometry label of the launching layer (LayerConfig.label())
    geometry: str = ""
    duration_ms: float = 0.0
    flop_count_sp: float = 0.0
    #: global load requests (one per warp-level load instruction)
    gld_requests: float = 0.0
    #: 32-byte sectors actually transferred for those requests
    gld_transactions: float = 0.0
    #: bytes the program asked for (useful bytes)
    gld_bytes_requested: float = 0.0
    tex_cache_requests: float = 0.0
    #: corner texel reads behind those requests (≤ 4 per bilinear request)
    tex_texel_reads: float = 0.0
    tex_cache_hits: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0

    @property
    def mflop(self) -> float:
        return self.flop_count_sp / 1e6

    @property
    def gld_transactions_per_request(self) -> float:
        if self.gld_requests == 0:
            return 0.0
        return self.gld_transactions / self.gld_requests

    @property
    def gld_efficiency(self) -> float:
        """Requested bytes / transferred bytes, as a percentage (nvprof)."""
        moved = self.gld_transactions * 32.0
        if moved == 0:
            return 100.0
        return min(100.0, 100.0 * self.gld_bytes_requested / moved)

    @property
    def tex_cache_hit_rate(self) -> float:
        if self.tex_texel_reads == 0:
            return 0.0
        return 100.0 * self.tex_cache_hits / self.tex_texel_reads

    def merged(self, other: "KernelStats") -> "KernelStats":
        """Counter-wise sum (durations add; ratios recomputed on demand).

        The result's ``name`` only claims a kernel identity when both
        operands agree (or one is unnamed): an aggregate of two *different*
        kernels is labelled with both, so it can never masquerade as either.
        ``layer``/``geometry`` follow the stricter rule of dropping to ""
        on disagreement — an aggregate spanning layers belongs to no layer.
        """
        if self.name == other.name or not other.name:
            name = self.name
        elif not self.name:
            name = other.name
        else:
            name = f"{self.name}+{other.name}"
        out = KernelStats(
            name=name,
            layer=_merge_attribution(self.layer, other.layer),
            geometry=_merge_attribution(self.geometry, other.geometry))
        for f in fields(KernelStats):
            if f.name in _LABEL_FIELDS:
                continue
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out


@dataclass
class _Aggregate:
    """Rolled-over history for one (name, layer, geometry) triple."""

    stats: KernelStats
    launches: int = 0


class ProfileLog:
    """Accumulates per-kernel stats across a model inference (nvprof trace).

    Thread-safe; ``subscribe()`` registers listeners (e.g. a
    :class:`~repro.obs.tracer.SpanTracer`) invoked once per added record.
    ``max_records`` bounds the live window (None = unbounded); evicted
    records are folded into exact aggregates, so totals never drift.
    """

    #: default live-window bound — generous for interactive runs, small
    #: enough that a serving process holds steady-state memory
    DEFAULT_MAX_RECORDS = 4096

    def __init__(self, max_records: Optional[int] = DEFAULT_MAX_RECORDS):
        if max_records is not None and max_records < 2:
            raise ValueError("max_records must be >= 2 (or None)")
        self.max_records = max_records
        self.records: List[KernelStats] = []
        self._lock = threading.RLock()
        self._listeners: List[Callable[[KernelStats], None]] = []
        self._evicted: Dict[Tuple[str, str, str], _Aggregate] = {}
        self._evicted_ms = 0.0
        self._evicted_count = 0

    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[KernelStats], None]) -> None:
        """Call ``listener(record)`` for every subsequently added record."""
        with self._lock:
            self._listeners.append(listener)

    def add(self, stats: KernelStats) -> None:
        with self._lock:
            self.records.append(stats)
            if (self.max_records is not None
                    and len(self.records) > self.max_records):
                self._roll_over()
            listeners = list(self._listeners)
        for listener in listeners:
            listener(stats)

    def _roll_over(self) -> None:
        """Fold the oldest half of the live window into exact aggregates."""
        keep_from = len(self.records) // 2
        evicted, self.records = (self.records[:keep_from],
                                 self.records[keep_from:])
        for r in evicted:
            key = (r.name, r.layer, r.geometry)
            agg = self._evicted.get(key)
            if agg is None:
                self._evicted[key] = _Aggregate(stats=replace(r), launches=1)
            else:
                agg.stats = agg.stats.merged(r)
                agg.launches += 1
            self._evicted_ms += r.duration_ms
            self._evicted_count += 1

    # ------------------------------------------------------------------
    @property
    def total_ms(self) -> float:
        with self._lock:
            return self._evicted_ms + sum(r.duration_ms for r in self.records)

    @property
    def num_launches(self) -> int:
        """All launches ever added, including rolled-over ones."""
        with self._lock:
            return self._evicted_count + len(self.records)

    def _grouped(self, key_fn) -> Dict[str, Tuple[KernelStats, int]]:
        """Aggregate history + live records under ``key_fn(record)``."""
        agg: Dict[str, Tuple[KernelStats, int]] = {}

        def fold(key: str, stats: KernelStats, launches: int) -> None:
            if key in agg:
                prev, n = agg[key]
                agg[key] = (prev.merged(stats), n + launches)
            else:
                agg[key] = (replace(stats), launches)

        with self._lock:
            for (name, layer, geometry), a in self._evicted.items():
                fold(key_fn(a.stats), a.stats, a.launches)
            for r in self.records:
                fold(key_fn(r), r, 1)
        return agg

    def by_name(self) -> Dict[str, KernelStats]:
        """Aggregate counters per kernel name.

        Every returned row is a fresh object — including single-occurrence
        names, which previously aliased the live record, so a caller
        mutating the aggregate silently corrupted the log.
        """
        return {k: s for k, (s, _) in self._grouped(
            lambda r: r.name).items()}

    def by_layer(self) -> Dict[str, KernelStats]:
        """Aggregate counters per model layer ("" = unattributed launches).

        The values' ``duration_ms`` sum exactly to :attr:`total_ms` — this
        is the paper's Table II/IV per-layer attribution.
        """
        return {k: s for k, (s, _) in self._grouped(
            lambda r: r.layer).items()}

    def summary_rows(self) -> List[dict]:
        """nvprof-like table: one dict per kernel name."""
        rows = []
        for name, s in sorted(self.by_name().items()):
            rows.append({
                "kernel": name,
                "time_ms": round(s.duration_ms, 4),
                "mflop": round(s.mflop, 2),
                "gld_efficiency_pct": round(s.gld_efficiency, 1),
                "gld_transactions_per_request": round(
                    s.gld_transactions_per_request, 2),
                "tex_requests": int(s.tex_cache_requests),
                "tex_hit_rate_pct": round(s.tex_cache_hit_rate, 1),
            })
        return rows

    def per_layer_rows(self) -> List[dict]:
        """Paper-style Table II/IV rows: one dict per attributed layer.

        Unattributed launches (records added outside an engine, or before
        attribution existed) appear as a final ``(unattributed)`` row, so
        the table always accounts for 100 % of ``total_ms``.
        """
        grouped = self._grouped(lambda r: r.layer)
        total = sum(s.duration_ms for s, _ in grouped.values())
        rows = []
        for layer in sorted(grouped, key=lambda k: (k == "", k)):
            s, launches = grouped[layer]
            share = 100.0 * s.duration_ms / total if total else 0.0
            rows.append({
                "layer": layer or "(unattributed)",
                "geometry": s.geometry or "-",
                "launches": launches,
                # unrounded: the column must sum exactly to ``total_ms``
                "time_ms": s.duration_ms,
                "share_pct": round(share, 1),
                "mflop": round(s.mflop, 2),
                "tex_hit_rate_pct": round(s.tex_cache_hit_rate, 1),
            })
        return rows
