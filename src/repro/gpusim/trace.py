"""Access-trace construction for the deformable kernels.

The irregularity that hurts the PyTorch deformable kernel is *data
dependent*: it comes from the learned offsets.  These helpers turn the
actual sampling positions (from :func:`repro.deform.sampling_positions`)
into the warp-shaped global-memory address arrays and CTA-tagged texture
fetch streams that the coalescing and cache models consume.

Large layers are sampled: a seeded subset of warps / CTAs is simulated and
counters are scaled by the inverse sampling fraction.  Sampling error on the
aggregate counters is O(1/√warps) and irrelevant next to the modelling
error, while keeping even 512-channel × 138² layers sub-second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import CoalescingStats, coalescing_stats


@dataclass(frozen=True)
class SamplePlan:
    """How much of a trace to simulate exactly."""

    max_warps: int = 4096
    max_fetches: int = 2_000_000
    seed: int = 0


def warp_addresses_for_corner(py: np.ndarray, px: np.ndarray, corner: Tuple[int, int],
                              width: int, dtype_bytes: int, spec: DeviceSpec,
                              plan: Optional[SamplePlan] = None
                              ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Byte addresses of one bilinear corner's loads, shaped into warps.

    The reference ("PyTorch") kernel assigns one thread per output pixel of
    one (channel, tap) pair, so a warp's 32 lanes are 32 *consecutive output
    pixels* of the same tap — exactly mmcv's ``deformable_im2col`` mapping.

    ``py``/``px``: (K, L) fractional positions for one deformable group.
    Returns ``(addresses, active_mask, scale)`` where scale is the factor by
    which the (possibly sampled) stats must be multiplied.
    """
    plan = plan or SamplePlan()
    dy, dx = corner
    k, l = py.shape
    warp = spec.warp_size
    pad = (-l) % warp
    if pad:
        py = np.pad(py, ((0, 0), (0, pad)), mode="edge")
        px = np.pad(px, ((0, 0), (0, pad)), mode="edge")
    y = np.floor(py).astype(np.int64) + dy
    x = np.floor(px).astype(np.int64) + dx
    y = y.reshape(-1, warp)
    x = x.reshape(-1, warp)
    num_warps = y.shape[0]
    scale = 1.0
    if num_warps > plan.max_warps:
        rng = np.random.default_rng(plan.seed)
        pick = rng.choice(num_warps, size=plan.max_warps, replace=False)
        pick.sort()
        y, x = y[pick], x[pick]
        scale = num_warps / plan.max_warps
    # Height bound is checked by the caller through the active mask.
    addresses = (y * width + x) * dtype_bytes
    return addresses, (y, x), scale


def deform_input_coalescing(py: np.ndarray, px: np.ndarray, h: int, w: int,
                            channels: int, dtype_bytes: int, spec: DeviceSpec,
                            plan: Optional[SamplePlan] = None
                            ) -> CoalescingStats:
    """Coalescing counters for the reference kernel's input gathers.

    Simulates the four corner loads for one representative channel of one
    deformable group and scales by ``channels`` (all channels in a group
    share positions, so their per-warp sector counts are identical — only
    base addresses differ).
    """
    plan = plan or SamplePlan()
    total = None
    for corner in ((0, 0), (0, 1), (1, 0), (1, 1)):
        addresses, (y, x), scale = warp_addresses_for_corner(
            py, px, corner, w, dtype_bytes, spec, plan)
        active = (y >= 0) & (y < h) & (x >= 0) & (x < w)
        stats = coalescing_stats(np.where(active, addresses, 0), dtype_bytes,
                                 spec, active_mask=active)
        stats = stats.scaled(scale * channels)
        total = stats if total is None else total.merged(stats)
    return total


def cta_ids_for_tile(out_h: int, out_w: int,
                     tile: Tuple[int, int]) -> np.ndarray:
    """Output-pixel → CTA id mapping for one (ty, tx) CTA tiling.

    Returns an ``(out_h * out_w,)`` int array in row-major pixel order.
    This is the *only* tile-dependent ingredient of a texture fetch trace,
    which is what makes one-pass re-tiling
    (:meth:`~repro.gpusim.cache.TextureCacheModel.simulate_retiled`) work.
    """
    ty, tx = tile
    oy = np.repeat(np.arange(out_h), out_w)
    ox = np.tile(np.arange(out_w), out_h)
    tiles_x = -(-out_w // tx)
    return (oy // ty) * tiles_x + (ox // tx)


def sample_trace_ctas(y0: np.ndarray, x0: np.ndarray, cta: np.ndarray,
                      num_fetches: int, plan: SamplePlan
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Subsample a fetch trace by whole CTAs when it exceeds the plan.

    Sampling whole CTAs preserves intra-CTA locality; ``num_fetches`` is
    the unsampled trace length the returned ``scale`` restores.  A trace
    within budget passes through untouched (``scale == 1.0``).
    """
    scale = 1.0
    if y0.size > plan.max_fetches:
        rng = np.random.default_rng(plan.seed)
        num_ctas = int(cta.max()) + 1
        keep = max(1, int(num_ctas * plan.max_fetches / y0.size))
        chosen = rng.choice(num_ctas, size=keep, replace=False)
        mask = np.isin(cta, chosen)
        y0, x0, cta = y0[mask], x0[mask], cta[mask]
        scale = num_fetches / max(1, y0.size)
    return y0, x0, cta, scale


def texture_fetch_trace(py: np.ndarray, px: np.ndarray, out_w: int,
                        tile: Tuple[int, int],
                        plan: Optional[SamplePlan] = None
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """CTA-tagged texture fetch stream for the tex2D kernels.

    The texture kernels tile the *output* plane: CTA (i, j) covers a
    ``tile`` = (ty, tx) block of output pixels and issues one bilinear fetch
    per tap per pixel (per channel — channels share the trace and are
    handled by the cache model's concurrency divisor).

    ``py``/``px``: (K, L) positions; returns ``(y0, x0, cta_ids, scale)``
    with the top-left corner texel of each fetch.
    """
    plan = plan or SamplePlan()
    k, l = py.shape
    out_h = l // out_w
    cta_of_pixel = cta_ids_for_tile(out_h, out_w, tile)
    cta = np.broadcast_to(cta_of_pixel, (k, l)).ravel()
    y0 = np.floor(py).ravel().astype(np.int64)
    x0 = np.floor(px).ravel().astype(np.int64)
    # Sample whole CTAs so intra-CTA locality is preserved.
    return sample_trace_ctas(y0, x0, cta, k * l, plan)
