"""Streaming-video subsystem facade.

``repro.video`` bundles the pieces a video-serving caller needs into one
import surface:

* the procedural video source (:class:`~repro.data.video.VideoStream`,
  :func:`~repro.data.video.make_video`), whose consecutive frames carry
  offset fields with a bounded per-frame delta;
* the delta-keyed plan cache
  (:class:`~repro.kernels.plancache.PlanCache` with ``delta_bound`` set),
  which reuses a session's anchored fetch trace and fused buffers across
  frames while keeping outputs bit-identical to a cold run;
* the session-aware engine surface
  (:meth:`~repro.pipeline.engine.DefconEngine.set_session` /
  :meth:`~repro.pipeline.engine.DefconEngine.end_session`).

See docs/streaming.md for the temporal-coherence model and the exactness
guarantee behind delta keying.
"""

from __future__ import annotations

from repro.data.video import (
    DEFAULT_OFFSET_SHAPE,
    VideoFrame,
    VideoStream,
    make_video,
)
from repro.kernels.plancache import PlanCache, PlanCacheStats
from repro.pipeline.engine import DefconEngine

__all__ = [
    "DEFAULT_OFFSET_SHAPE",
    "DefconEngine",
    "PlanCache",
    "PlanCacheStats",
    "VideoFrame",
    "VideoStream",
    "make_video",
]
