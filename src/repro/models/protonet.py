"""ProtoNet — the YOLACT prototype-mask branch.

YOLACT's key idea: predict k image-wide *prototype* masks once, and have
each detection linearly combine them with per-instance coefficients.  The
paper's models inherit this head unchanged; we reproduce it at reduced
width.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor
from repro.nn import Conv2d, Module, ReLU
from repro.nn import functional as F


class ProtoNet(Module):
    """Two 3×3 convs + 2× upsample + 1×1 to ``num_prototypes`` channels.

    Output prototypes live at twice the P3 resolution (image/2 with the
    default geometry) and are non-negative (ReLU), as in YOLACT.
    """

    def __init__(self, in_channels: int, num_prototypes: int = 6,
                 width: int = 24, rng: np.random.Generator = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv1 = Conv2d(in_channels, width, 3, padding=1, rng=rng)
        self.conv2 = Conv2d(width, width, 3, padding=1, rng=rng)
        self.proj = Conv2d(width, num_prototypes, 1, rng=rng)
        self.relu = ReLU()
        self.num_prototypes = num_prototypes

    def forward(self, p3: Tensor) -> Tensor:
        out = self.relu(self.conv1(p3))
        out = F.interpolate_nearest2x(out)
        out = self.relu(self.conv2(out))
        return self.relu(self.proj(out))
