"""Model zoo: ResNet-style backbones with DCN candidate sites, FPN,
YOLACT-style segmentation heads, and a classification proxy head."""

from repro.models.resnet import (EXPANSION, SEARCHABLE_STAGES, STAGE_BLOCKS,
                                 Bottleneck, ResNetBackbone, SiteSpec)
from repro.models.fpn import FPNLite
from repro.models.protonet import ProtoNet
from repro.models.prediction_head import PredictionHead
from repro.models.yolact import YolactLite
from repro.models.classifier import ShapeClassifier
from repro.models.zoo import (build_backbone, build_classifier, build_yolact,
                              dual_path_sites, placement_factory,
                              supernet_factory)

__all__ = [
    "ResNetBackbone", "Bottleneck", "SiteSpec", "STAGE_BLOCKS",
    "SEARCHABLE_STAGES", "EXPANSION",
    "FPNLite", "ProtoNet", "PredictionHead", "YolactLite", "ShapeClassifier",
    "build_backbone", "build_yolact", "build_classifier",
    "placement_factory", "supernet_factory", "dual_path_sites",
]
