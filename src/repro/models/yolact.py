"""YolactLite — the instance-segmentation model of the reproduction.

Backbone (ResNet-style, with DCN candidate sites) → FPN → {ProtoNet,
PredictionHead}, plus YOLACT's inference recipe: score thresholding,
per-class NMS, prototype mask assembly, crop-to-box.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.tensor import Tensor, no_grad
from repro.nn import Module
from repro.data.coco_map import Detection
from repro.data.iou import box_iou
from repro.models.fpn import FPNLite
from repro.models.prediction_head import PredictionHead
from repro.models.protonet import ProtoNet
from repro.models.resnet import ResNetBackbone


#: Box centres are predicted relative to the owning grid cell (a conv head
#: carries no absolute position): decoded centre = cell centre +
#: (sigmoid(raw) − 0.5) × CELL_RANGE cells.
CELL_RANGE = 3.0


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-safe logistic."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class YolactLite(Module):
    """End-to-end model; ``forward`` returns raw heads, ``detect`` decodes."""

    def __init__(self, backbone: ResNetBackbone, num_classes: int = 4,
                 num_prototypes: int = 6, fpn_channels: int = 24,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed + 1)
        self.backbone = backbone
        self.fpn = FPNLite(backbone.stage_channels[3],
                           backbone.stage_channels[4],
                           backbone.stage_channels[5],
                           out_channels=fpn_channels, rng=rng)
        self.protonet = ProtoNet(fpn_channels, num_prototypes=num_prototypes,
                                 rng=rng)
        self.head = PredictionHead(fpn_channels, num_classes=num_classes,
                                   num_prototypes=num_prototypes, rng=rng)
        self.num_classes = num_classes
        self.num_prototypes = num_prototypes
        self.input_size = backbone.input_size
        # Prototypes are ReLU'd (non-negative), so background pixels sit at
        # logit 0 (= p 0.5) without a bias; start masks empty instead.
        from repro.nn.module import Parameter

        self.mask_bias = Parameter(np.array([-2.0], dtype=np.float32))

    # ------------------------------------------------------------------
    def forward(self, images: Tensor) -> Dict[str, Tensor]:
        feats = self.backbone(images)
        p3 = self.fpn(feats)
        out = self.head(p3)
        out["proto"] = self.protonet(p3)   # (N, K, H/2, W/2)
        out["mask_bias"] = self.mask_bias
        return out

    # ------------------------------------------------------------------
    def assemble_masks(self, proto: np.ndarray, coefs: np.ndarray
                       ) -> np.ndarray:
        """Linear combination + sigmoid: (K, Hp, Wp) × (M, K) → (M, Hp, Wp)."""
        logits = np.tensordot(coefs, proto, axes=(1, 0))
        return _sigmoid(logits + float(self.mask_bias.data[0]))

    def detect(self, images: np.ndarray, score_threshold: float = 0.35,
               nms_iou: float = 0.5, max_dets: int = 8,
               image_ids: Optional[Sequence[int]] = None) -> List[Detection]:
        """Decode detections for a batch of (N, 3, H, W) images."""
        self.eval()
        with no_grad():
            out = self(Tensor(images))
        n = images.shape[0]
        size = images.shape[-1]
        obj = _sigmoid(out["obj"].data[:, 0])                   # (N, G, G)
        cls = out["cls"].data                                   # (N, C, G, G)
        cls = np.exp(cls - cls.max(axis=1, keepdims=True))
        cls = cls / cls.sum(axis=1, keepdims=True)
        box = _sigmoid(out["box"].data)                         # (N, 4, G, G)
        coef = out["coef"].data                                 # (N, K, G, G)
        proto = out["proto"].data                               # (N, K, Hp, Wp)
        ids = list(image_ids) if image_ids is not None else list(range(n))

        detections: List[Detection] = []
        for i in range(n):
            score_map = obj[i][None] * cls[i]                   # (C, G, G)
            labels, gys, gxs = np.nonzero(score_map > score_threshold)
            if len(labels) == 0:
                continue
            scores = score_map[labels, gys, gxs]
            order = np.argsort(-scores)[: 4 * max_dets]
            labels, gys, gxs, scores = (labels[order], gys[order],
                                        gxs[order], scores[order])
            grid = obj.shape[-1]
            cell = size / grid
            cx = (gxs + 0.5
                  + (box[i, 0, gys, gxs] - 0.5) * CELL_RANGE) * cell
            cy = (gys + 0.5
                  + (box[i, 1, gys, gxs] - 0.5) * CELL_RANGE) * cell
            bw = np.maximum(box[i, 2, gys, gxs] * size, 2.0)
            bh = np.maximum(box[i, 3, gys, gxs] * size, 2.0)
            boxes = np.stack([cx - bw / 2, cy - bh / 2,
                              cx + bw / 2, cy + bh / 2], axis=1)
            boxes = np.clip(boxes, 0, size)
            coefs = coef[i, :, gys, gxs]                        # (M, K)
            masks_small = self.assemble_masks(proto[i], coefs)  # (M, Hp, Wp)
            keep = _per_class_nms(boxes, scores, labels, nms_iou)[:max_dets]
            up = size // masks_small.shape[-1]
            for j in keep:
                mask = np.repeat(np.repeat(masks_small[j], up, axis=0),
                                 up, axis=1) > 0.5
                mask = _crop_to_box(mask, boxes[j])
                detections.append(Detection(
                    image_id=ids[i], label=int(labels[j]),
                    score=float(scores[j]), box=boxes[j].astype(np.float64),
                    mask=mask))
        return detections


def _per_class_nms(boxes: np.ndarray, scores: np.ndarray, labels: np.ndarray,
                   iou_thr: float) -> List[int]:
    """Greedy NMS within each class; returns kept indices, best first."""
    keep: List[int] = []
    for label in np.unique(labels):
        idx = np.nonzero(labels == label)[0]
        idx = idx[np.argsort(-scores[idx])]
        while len(idx):
            best = idx[0]
            keep.append(int(best))
            if len(idx) == 1:
                break
            ious = box_iou(boxes[best][None], boxes[idx[1:]])[0]
            idx = idx[1:][ious < iou_thr]
    keep.sort(key=lambda j: -scores[j])
    return keep


def _crop_to_box(mask: np.ndarray, box: np.ndarray) -> np.ndarray:
    """YOLACT's crop: zero the assembled mask outside the predicted box."""
    out = np.zeros_like(mask)
    x1, y1, x2, y2 = (int(np.floor(box[0])), int(np.floor(box[1])),
                      int(np.ceil(box[2])), int(np.ceil(box[3])))
    h, w = mask.shape
    x1, y1 = max(0, x1), max(0, y1)
    x2, y2 = min(w, x2), min(h, y2)
    if x2 > x1 and y2 > y1:
        out[y1:y2, x1:x2] = mask[y1:y2, x1:x2]
    return out
