"""YOLACT-style dense prediction head.

One shared 3×3 tower on P3 followed by four sibling 1×1 branches producing,
per grid cell: objectness, class logits, a normalised box, and the mask
coefficients that combine the ProtoNet prototypes.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.tensor import Tensor
from repro.nn import Conv2d, Module, ReLU


class PredictionHead(Module):
    def __init__(self, in_channels: int, num_classes: int,
                 num_prototypes: int, width: int = 24,
                 rng: np.random.Generator = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.tower = Conv2d(in_channels, width, 3, padding=1, rng=rng)
        self.relu = ReLU()
        self.obj = Conv2d(width, 1, 1, rng=rng)
        self.cls = Conv2d(width, num_classes, 1, rng=rng)
        self.box = Conv2d(width, 4, 1, rng=rng)
        self.coef = Conv2d(width, num_prototypes, 1, rng=rng)
        self.num_classes = num_classes
        self.num_prototypes = num_prototypes

    def forward(self, p3: Tensor) -> Dict[str, Tensor]:
        t = self.relu(self.tower(p3))
        return {
            "obj": self.obj(t),        # (N, 1, G, G) logits
            "cls": self.cls(t),        # (N, C, G, G) logits
            "box": self.box(t),        # (N, 4, G, G) raw; sigmoid → [0,1]
            "coef": self.coef(t),      # (N, K, G, G) mask coefficients
        }
