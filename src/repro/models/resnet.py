"""ResNet-style backbone with pluggable 3×3 sites (the DCN candidates).

Mirrors the structure the paper searches over: bottleneck residual blocks
arranged in four stages, stride-2 downsampling at the entry of stages 3–5,
and **the 3×3 convolution of every bottleneck in the last three stages** as
the candidate site where interval search may substitute a deformable
convolution (YOLACT++ applies DCNs in exactly those stages of its
ResNet-50/101 backbone).

The scaled-down presets ``r50s`` / ``r101s`` keep the stage structure and
downsampling pattern of ResNet-50/101 at a width and depth that train in
seconds on the NumPy engine (see DESIGN.md, "Scaled-down model dictionary").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor import Tensor
from repro.nn import BatchNorm2d, Conv2d, Module, ModuleList, ReLU
from repro.kernels.config import LayerConfig

#: Bottleneck output channels = width × EXPANSION.
EXPANSION = 2

#: stage blocks of the scaled backbones (analogue of [3,4,6,3]/[3,4,23,3])
STAGE_BLOCKS = {
    "r50s": (2, 3, 4, 2),
    "r101s": (2, 3, 8, 3),
}
#: stages whose 3×3 convs are DCN candidates ("the last three stages")
SEARCHABLE_STAGES = (3, 4, 5)


@dataclass(frozen=True)
class SiteSpec:
    """Identity and geometry of one candidate 3×3 site."""

    stage: int           # 2..5
    block: int           # index within the stage
    in_channels: int     # = width of the bottleneck
    out_channels: int
    stride: int
    feature_size: int    # spatial extent of this conv's input

    @property
    def is_downsampling(self) -> bool:
        return self.stride == 2

    def layer_config(self, batch: int = 1) -> LayerConfig:
        """The shape handed to the latency table / kernel benches."""
        return LayerConfig(
            in_channels=self.in_channels, out_channels=self.out_channels,
            height=self.feature_size, width=self.feature_size,
            stride=self.stride, batch=batch)


#: factory(site, rng) -> Module computing the 3×3 conv of that site
Conv3x3Factory = Callable[[SiteSpec, np.random.Generator], Module]


def default_conv3x3(site: SiteSpec, rng: np.random.Generator) -> Module:
    return Conv2d(site.in_channels, site.out_channels, 3, stride=site.stride,
                  padding=1, bias=False, rng=rng)


class Bottleneck(Module):
    """1×1 reduce → 3×3 (candidate site) → 1×1 expand, with skip."""

    def __init__(self, in_channels: int, width: int, stride: int,
                 conv2: Module, rng: np.random.Generator):
        super().__init__()
        out_channels = width * EXPANSION
        self.conv1 = Conv2d(in_channels, width, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(width)
        self.conv2 = conv2
        self.bn2 = BatchNorm2d(width)
        self.conv3 = Conv2d(width, out_channels, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.down_conv = Conv2d(in_channels, out_channels, 1,
                                    stride=stride, bias=False, rng=rng)
            self.down_bn = BatchNorm2d(out_channels)
        else:
            self.down_conv = None
            self.down_bn = None
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        if self.down_conv is not None:
            identity = self.down_bn(self.down_conv(x))
        return self.relu(out + identity)


class ResNetBackbone(Module):
    """Four-stage bottleneck backbone with candidate-site bookkeeping.

    Parameters
    ----------
    arch:
        'r50s' or 'r101s' (or an explicit blocks tuple).
    input_size:
        Image extent (square); used to record per-site feature sizes for
        the latency table.
    conv3x3_factory:
        Builds the 3×3 operator of every bottleneck in the *searchable*
        stages — plain conv (default), a fixed :class:`DeformConv2d`, or a
        :class:`~repro.nas.dual_path.DualPathLayer` for the supernet.
    """

    def __init__(self, arch: str = "r50s", base_width: int = 8,
                 input_size: int = 64,
                 conv3x3_factory: Optional[Conv3x3Factory] = None,
                 seed: int = 0):
        super().__init__()
        if isinstance(arch, str):
            if arch not in STAGE_BLOCKS:
                raise KeyError(f"unknown arch {arch!r}; "
                               f"known: {sorted(STAGE_BLOCKS)}")
            blocks = STAGE_BLOCKS[arch]
        else:
            blocks = tuple(arch)
            arch = f"custom{blocks}"
        factory = conv3x3_factory or default_conv3x3
        rng = np.random.default_rng(seed)
        self.arch = arch
        self.input_size = input_size

        self.stem = Conv2d(3, base_width, 3, stride=2, padding=1,
                           bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(base_width)
        self.relu = ReLU()

        self._site_specs: List[SiteSpec] = []
        self._site_modules: List[Module] = []
        self.stage_channels: Dict[int, int] = {}
        stages = ModuleList()
        in_channels = base_width
        feature = input_size // 2  # after the stem
        for stage_idx, num_blocks in zip((2, 3, 4, 5), blocks):
            width = base_width * 2 ** (stage_idx - 2)
            stage = ModuleList()
            for block_idx in range(num_blocks):
                stride = 2 if (block_idx == 0 and stage_idx >= 3) else 1
                site = SiteSpec(stage=stage_idx, block=block_idx,
                                in_channels=width, out_channels=width,
                                stride=stride, feature_size=feature)
                if stage_idx in SEARCHABLE_STAGES:
                    conv2 = factory(site, rng)
                    self._site_specs.append(site)
                    self._site_modules.append(conv2)
                else:
                    conv2 = default_conv3x3(site, rng)
                block = Bottleneck(in_channels, width, stride, conv2, rng)
                stage.append(block)
                in_channels = block.out_channels
                if stride == 2:
                    feature //= 2
            stages.append(stage)
            self.stage_channels[stage_idx] = in_channels
        self.stages = stages

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Dict[str, Tensor]:
        """Returns the pyramid features {'c2': ..., 'c5': ...}."""
        out = self.relu(self.stem_bn(self.stem(x)))
        features = {}
        for stage_idx, stage in zip((2, 3, 4, 5), self.stages):
            for block in stage:
                out = block(out)
            features[f"c{stage_idx}"] = out
        return features

    # ------------------------------------------------------------------
    def candidate_sites(self) -> List[Tuple[SiteSpec, Module]]:
        """The searchable 3×3 sites in backbone order."""
        return list(zip(self._site_specs, self._site_modules))

    def site_layer_configs(self, batch: int = 1) -> List[LayerConfig]:
        return [spec.layer_config(batch) for spec in self._site_specs]

    def num_candidate_sites(self) -> int:
        return len(self._site_specs)

    def __repr__(self) -> str:
        return (f"ResNetBackbone({self.arch}, sites="
                f"{self.num_candidate_sites()})")
