"""Classification head over the backbone — the quick accuracy proxy.

Single-object shape classification isolates the geometric-deformation
signal with far less training than full instance segmentation; the
ablation benches use it where the paper's trend only needs an accuracy
*ordering* (e.g. the boundary sweep of Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor
from repro.nn import Linear, Module
from repro.nn import functional as F
from repro.models.resnet import ResNetBackbone


class ShapeClassifier(Module):
    def __init__(self, backbone: ResNetBackbone, num_classes: int = 4,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed + 2)
        self.backbone = backbone
        self.fc = Linear(backbone.stage_channels[5], num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, images: Tensor) -> Tensor:
        feats = self.backbone(images)
        pooled = F.global_avg_pool2d(feats["c5"])
        return self.fc(pooled)

    def predict(self, images: np.ndarray) -> np.ndarray:
        from repro.tensor import no_grad

        self.eval()
        with no_grad():
            logits = self(Tensor(images))
        return logits.data.argmax(axis=1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(images) == labels).mean())
