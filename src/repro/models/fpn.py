"""Feature Pyramid Network neck (the YOLACT FPN, reduced to what the
shapes task needs: a single fused P3 level built top-down from c3–c5)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.tensor import Tensor
from repro.nn import BatchNorm2d, Conv2d, Module, ReLU
from repro.nn import functional as F


class FPNLite(Module):
    """Lateral 1×1 projections + top-down 2× upsampling, fused at c3 scale."""

    def __init__(self, c3: int, c4: int, c5: int, out_channels: int = 24,
                 rng: np.random.Generator = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.lat3 = Conv2d(c3, out_channels, 1, bias=False, rng=rng)
        self.lat4 = Conv2d(c4, out_channels, 1, bias=False, rng=rng)
        self.lat5 = Conv2d(c5, out_channels, 1, bias=False, rng=rng)
        self.smooth = Conv2d(out_channels, out_channels, 3, padding=1,
                             bias=False, rng=rng)
        self.bn = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.out_channels = out_channels

    def forward(self, features: Dict[str, Tensor]) -> Tensor:
        p5 = self.lat5(features["c5"])
        p4 = self.lat4(features["c4"]) + F.interpolate_nearest2x(p5)
        p3 = self.lat3(features["c3"]) + F.interpolate_nearest2x(p4)
        return self.relu(self.bn(self.smooth(p3)))
