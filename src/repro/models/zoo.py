"""Model factory: plain / DCN-placed / supernet variants of the backbones.

The placement vector is the central object: one boolean per candidate 3×3
site (backbone order), True meaning a deformable convolution sits there.
``manual_interval_placement`` (YOLACT++'s interval-3 policy) and the
interval search both produce such vectors; this module turns them into
concrete models.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import Module
from repro.deform.layers import DeformConv2d
from repro.nas.dual_path import DualPathLayer
from repro.models.classifier import ShapeClassifier
from repro.models.resnet import (ResNetBackbone, SiteSpec, default_conv3x3)
from repro.models.yolact import YolactLite


def placement_factory(placement: Sequence[bool], lightweight: bool = False,
                      bound: Optional[float] = None, rounded: bool = False,
                      deformable_groups: int = 1):
    """conv3x3 factory realising a fixed placement vector."""
    placement = list(placement)
    counter = {"i": 0}

    def factory(site: SiteSpec, rng: np.random.Generator) -> Module:
        i = counter["i"]
        counter["i"] += 1
        if i >= len(placement):
            raise ValueError(
                f"placement vector too short: {len(placement)} entries for "
                f"site {i}")
        if placement[i]:
            return DeformConv2d(site.in_channels, site.out_channels, 3,
                                stride=site.stride, padding=1, bias=False,
                                lightweight=lightweight, bound=bound,
                                rounded=rounded,
                                deformable_groups=deformable_groups, rng=rng)
        return default_conv3x3(site, rng)

    return factory


def supernet_factory(lightweight: bool = False,
                     bound: Optional[float] = None,
                     deformable_groups: int = 1):
    """conv3x3 factory producing a DualPathLayer at every site."""

    def factory(site: SiteSpec, rng: np.random.Generator) -> Module:
        return DualPathLayer(site.in_channels, site.out_channels,
                             stride=site.stride, lightweight=lightweight,
                             bound=bound,
                             deformable_groups=deformable_groups, rng=rng)

    return factory


def build_backbone(arch: str = "r50s", input_size: int = 64,
                   base_width: int = 8,
                   placement: Optional[Sequence[bool]] = None,
                   supernet: bool = False, lightweight: bool = False,
                   bound: Optional[float] = None, rounded: bool = False,
                   seed: int = 0) -> ResNetBackbone:
    """Build a backbone with plain convs, a fixed DCN placement, or as a
    dual-path supernet."""
    if supernet and placement is not None:
        raise ValueError("choose either a fixed placement or supernet mode")
    if supernet:
        factory = supernet_factory(lightweight=lightweight, bound=bound)
    elif placement is not None:
        factory = placement_factory(placement, lightweight=lightweight,
                                    bound=bound, rounded=rounded)
    else:
        factory = None
    return ResNetBackbone(arch=arch, base_width=base_width,
                          input_size=input_size, conv3x3_factory=factory,
                          seed=seed)


def build_yolact(arch: str = "r50s", input_size: int = 64,
                 num_classes: int = 4,
                 placement: Optional[Sequence[bool]] = None,
                 supernet: bool = False, lightweight: bool = False,
                 bound: Optional[float] = None, rounded: bool = False,
                 seed: int = 0, **kwargs) -> YolactLite:
    backbone = build_backbone(arch=arch, input_size=input_size,
                              placement=placement, supernet=supernet,
                              lightweight=lightweight, bound=bound,
                              rounded=rounded, seed=seed)
    return YolactLite(backbone, num_classes=num_classes, seed=seed, **kwargs)


def build_classifier(arch: str = "r50s", input_size: int = 64,
                     num_classes: int = 4,
                     placement: Optional[Sequence[bool]] = None,
                     supernet: bool = False, lightweight: bool = False,
                     bound: Optional[float] = None, rounded: bool = False,
                     seed: int = 0) -> ShapeClassifier:
    backbone = build_backbone(arch=arch, input_size=input_size,
                              placement=placement, supernet=supernet,
                              lightweight=lightweight, bound=bound,
                              rounded=rounded, seed=seed)
    return ShapeClassifier(backbone, num_classes=num_classes, seed=seed)


def dual_path_sites(model: Module) -> List[DualPathLayer]:
    """All DualPathLayer sites of a supernet model, in backbone order."""
    backbone = getattr(model, "backbone", model)
    return [mod for _, mod in backbone.candidate_sites()
            if isinstance(mod, DualPathLayer)]
