"""Graph-construction helpers for the autograd engine.

The engine is tape-free: each :class:`~repro.tensor.tensor.Tensor` produced
by an operation stores its parents and a backward closure.  ``backward_op``
is the single entry point used by every primitive to register that closure,
which keeps the grad-mode / requires-grad bookkeeping in one place.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions.

    NumPy broadcasting implicitly expands operands; the corresponding
    gradient must be summed over every expanded axis so that
    ``grad.shape == shape`` holds for the accumulation into ``Tensor.grad``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def backward_op(
    out_data: np.ndarray,
    parents: Sequence["Tensor"],
    grad_fn: Callable[[np.ndarray], Sequence],
    op: str = "",
) -> "Tensor":
    """Wrap ``out_data`` in a Tensor connected to ``parents``.

    ``grad_fn(grad_out)`` must return one gradient array (or ``None``) per
    parent, already shaped like that parent's data.  When grad mode is off or
    no parent requires grad, the result is a detached leaf — the graph is
    never built, so inference runs allocation-lean.
    """
    from repro.tensor.tensor import Tensor, is_grad_enabled

    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=requires)
    if requires:
        out._prev = tuple(parents)
        out._op = op

        def _backward(grad_out: np.ndarray) -> None:
            grads = grad_fn(grad_out)
            for parent, g in zip(parents, grads):
                if g is None or not parent.requires_grad:
                    continue
                g = np.asarray(g, dtype=parent.data.dtype)
                if parent.grad is None:
                    parent.grad = g.copy() if g.base is not None else g
                else:
                    parent.grad += g

        out._backward = _backward
    return out


def topo_sort(root: "Tensor") -> list:
    """Return tensors reachable from ``root`` in reverse-topological order.

    Iterative DFS — the graphs produced by unrolled training loops can exceed
    CPython's default recursion limit.
    """
    order: list = []
    visited: set = set()
    stack = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._prev:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order
