"""Reverse-mode autograd engine over NumPy arrays.

This subpackage provides the training substrate the paper's interval search
(Section III-A) requires: a :class:`~repro.tensor.tensor.Tensor` wrapping a
``numpy.ndarray`` with a dynamically built computation graph, and a library
of differentiable operations (elementwise math, reductions, shape ops,
matmul).  Convolution primitives live in :mod:`repro.nn.functional` and the
deformable-convolution primitive in :mod:`repro.deform.deform_conv`; both
register custom backward rules through :func:`repro.tensor.autograd.backward_op`.
"""

from repro.tensor.tensor import (Tensor, concat, grad_scale,
                                 is_grad_enabled, no_grad, stack, tensor)
from repro.tensor.autograd import backward_op

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled",
           "backward_op", "stack", "concat", "grad_scale"]
