"""The :class:`Tensor` class: a NumPy array with reverse-mode autograd.

Design notes
------------
* Data is always a ``numpy.ndarray`` (float32 by default for parameters and
  activations; integer tensors are supported for labels/indices but are not
  differentiable).
* The graph is built eagerly by the primitive ops; ``backward()`` walks it in
  reverse-topological order, freeing each node's closure as it goes so large
  training graphs do not pin memory across steps.
* Gradients accumulate into ``.grad`` (call :meth:`zero_grad` or use the
  optimizers in :mod:`repro.nn.optim`, which do this for you).
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.tensor.autograd import backward_op, topo_sort, unbroadcast

_GRAD_ENABLED = [True]


def is_grad_enabled() -> bool:
    """True when operations should record the autograd graph."""
    return _GRAD_ENABLED[-1]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


Scalar = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]


def _coerce(value: TensorLike) -> "Tensor":
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float32))


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Floating point data is kept in its
        dtype (default float32); python scalars/lists become float32.
    requires_grad:
        Whether gradients should be accumulated for this leaf.
    """

    __slots__ = ("data", "grad", "requires_grad", "_prev", "_backward", "_op")

    def __init__(self, data, requires_grad: bool = False):
        arr = np.asarray(data)
        if arr.dtype == np.float64:
            arr = arr.astype(np.float32)
        elif not np.issubdtype(arr.dtype, np.floating) and not np.issubdtype(
            arr.dtype, np.integer
        ) and arr.dtype != np.bool_:
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._prev: tuple = ()
        self._backward = None
        self._op = ""

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Shape tuple of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total element count."""
        return self.data.size

    @property
    def dtype(self):
        """NumPy dtype of the data."""
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A new leaf sharing this tensor's data, cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).  Closures are
        released after use to keep peak memory proportional to the frontier,
        not the whole tape.
        """
        if grad is None:
            grad = np.ones_like(self.data, dtype=self.data.dtype)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"backward grad shape {grad.shape} != tensor shape {self.data.shape}"
                )
        order = topo_sort(self)  # root-first
        grads = {id(self): grad}
        for node in order:
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad and not node._prev:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = g.copy()
                else:
                    node.grad += g
            if node._backward is not None:
                node._push_parent_grads(g, grads)
                node._backward = None  # free closure memory

    def _push_parent_grads(self, grad_out: np.ndarray, grads: dict) -> None:
        """Run this node's backward closure, accumulating into ``grads``."""
        # The closure writes into parent.grad; for interior nodes we instead
        # route through the dict.  To keep primitives simple they always write
        # parent.grad, so temporarily intercept.
        saved = []
        for p in self._prev:
            saved.append(p.grad)
            p.grad = None
        self._backward(grad_out)
        for p, old in zip(self._prev, saved):
            produced = p.grad
            p.grad = old
            if produced is None:
                continue
            if p._prev or not p.requires_grad:
                key = id(p)
                if key in grads:
                    grads[key] = grads[key] + produced
                else:
                    grads[key] = produced
            else:
                # Leaf with requires_grad: accumulate immediately.
                if p.grad is None:
                    p.grad = produced
                else:
                    p.grad = p.grad + produced

    # ------------------------------------------------------------------
    # arithmetic primitives
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = _coerce(other)
        return backward_op(
            self.data + other.data,
            (self, other),
            lambda g: (unbroadcast(g, self.shape), unbroadcast(g, other.shape)),
            "add",
        )

    __radd__ = __add__

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = _coerce(other)
        return backward_op(
            self.data - other.data,
            (self, other),
            lambda g: (unbroadcast(g, self.shape), unbroadcast(-g, other.shape)),
            "sub",
        )

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return _coerce(other) - self

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = _coerce(other)
        return backward_op(
            self.data * other.data,
            (self, other),
            lambda g: (
                unbroadcast(g * other.data, self.shape),
                unbroadcast(g * self.data, other.shape),
            ),
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = _coerce(other)
        return backward_op(
            self.data / other.data,
            (self, other),
            lambda g: (
                unbroadcast(g / other.data, self.shape),
                unbroadcast(-g * self.data / (other.data**2), other.shape),
            ),
            "div",
        )

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return _coerce(other) / self

    def __neg__(self) -> "Tensor":
        return backward_op(-self.data, (self,), lambda g: (-g,), "neg")

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")
        out = self.data**exponent
        return backward_op(
            out,
            (self,),
            lambda g: (g * exponent * self.data ** (exponent - 1),),
            "pow",
        )

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = _coerce(other)

        def grad_fn(g):
            a, b = self.data, other.data
            if a.ndim == 2 and b.ndim == 2:
                return g @ b.T, a.T @ g
            # Batched matmul: contract over batch dims with unbroadcast.
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

        return backward_op(self.data @ other.data, (self, other), grad_fn, "matmul")

    # ------------------------------------------------------------------
    # comparisons (non-differentiable, return detached bool tensors)
    # ------------------------------------------------------------------
    def __gt__(self, other: TensorLike) -> "Tensor":
        return Tensor(self.data > _coerce(other).data)

    def __lt__(self, other: TensorLike) -> "Tensor":
        return Tensor(self.data < _coerce(other).data)

    def __ge__(self, other: TensorLike) -> "Tensor":
        return Tensor(self.data >= _coerce(other).data)

    def __le__(self, other: TensorLike) -> "Tensor":
        return Tensor(self.data <= _coerce(other).data)

    # ------------------------------------------------------------------
    # elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise e**x."""
        out = np.exp(self.data)
        return backward_op(out, (self,), lambda g: (g * out,), "exp")

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        return backward_op(
            np.log(self.data), (self,), lambda g: (g / self.data,), "log"
        )

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out = np.sqrt(self.data)
        return backward_op(out, (self,), lambda g: (g / (2.0 * out),), "sqrt")

    def abs(self) -> "Tensor":
        """Elementwise absolute value (sign subgradient at 0)."""
        return backward_op(
            np.abs(self.data), (self,), lambda g: (g * np.sign(self.data),), "abs"
        )

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out = np.tanh(self.data)
        return backward_op(out, (self,), lambda g: (g * (1.0 - out**2),), "tanh")

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic function."""
        out = 1.0 / (1.0 + np.exp(-self.data))
        return backward_op(out, (self,), lambda g: (g * out * (1.0 - out),), "sigmoid")

    def relu(self) -> "Tensor":
        """Elementwise max(x, 0)."""
        mask = self.data > 0
        return backward_op(
            self.data * mask, (self,), lambda g: (g * mask,), "relu"
        )

    def clamp(self, lo: Optional[Scalar] = None, hi: Optional[Scalar] = None) -> "Tensor":
        """Clamp values into ``[lo, hi]``; gradient is zero outside the range.

        This is exactly the bounded-deformation operator of paper Section
        III-A-c (offsets restricted to ``[0, P]`` before the deformable
        kernel is applied).
        """
        out = np.clip(self.data, lo, hi)
        mask = np.ones_like(self.data, dtype=bool)
        if lo is not None:
            mask &= self.data >= lo
        if hi is not None:
            mask &= self.data <= hi
        return backward_op(out, (self,), lambda g: (g * mask,), "clamp")

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when None)."""
        out = self.data.sum(axis=axis, keepdims=keepdims)

        def grad_fn(g):
            if axis is None:
                return (np.broadcast_to(g, self.shape).astype(self.dtype),)
            gg = g
            if not keepdims:
                gg = np.expand_dims(gg, axis)
            return (np.broadcast_to(gg, self.shape).astype(self.dtype),)

        return backward_op(out, (self,), grad_fn, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        n = self.size if axis is None else (
            np.prod([self.shape[a] for a in np.atleast_1d(axis)])
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(n))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance over ``axis``."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; ties share the gradient."""
        out = self.data.max(axis=axis, keepdims=keepdims)

        def grad_fn(g):
            if axis is None:
                mask = self.data == out
                return (g * mask / mask.sum(),)
            gg, oo = g, out
            if not keepdims:
                gg = np.expand_dims(gg, axis)
                oo = np.expand_dims(oo, axis)
            mask = self.data == oo
            # Split gradient among ties for a well-defined subgradient.
            counts = mask.sum(axis=axis, keepdims=True)
            return (gg * mask / counts,)

        return backward_op(out, (self,), grad_fn, "max")

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View with a new shape (differentiable)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return backward_op(
            self.data.reshape(shape),
            (self,),
            lambda g: (g.reshape(self.shape),),
            "reshape",
        )

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed order by default)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))
        return backward_op(
            self.data.transpose(axes),
            (self,),
            lambda g: (g.transpose(inverse),),
            "transpose",
        )

    @property
    def T(self) -> "Tensor":
        """Transposed view (all axes reversed)."""
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out = self.data[idx]

        def grad_fn(g):
            full = np.zeros_like(self.data)
            np.add.at(full, idx, g)
            return (full,)

        return backward_op(out, (self,), grad_fn, "getitem")

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two (spatial) dims symmetrically by ``pad``."""
        if pad == 0:
            return self
        width = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out = np.pad(self.data, width)
        sl = (Ellipsis, slice(pad, -pad), slice(pad, -pad))
        return backward_op(out, (self,), lambda g: (g[sl],), "pad2d")

    # ------------------------------------------------------------------
    # softmax family (implemented as primitives for numerical stability)
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        softmax = np.exp(out)
        return backward_op(
            out,
            (self,),
            lambda g: (g - softmax * g.sum(axis=axis, keepdims=True),),
            "log_softmax",
        )

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)
        return backward_op(
            out,
            (self,),
            lambda g: (out * (g - (g * out).sum(axis=axis, keepdims=True)),),
            "softmax",
        )


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def grad_scale(x: Tensor, scale: float) -> Tensor:
    """Identity in the forward pass; multiplies the gradient by ``scale``.

    The standard trick for training offset heads in deformable networks
    (Dai et al. use an offset learning-rate multiplier of 0.1): the offsets
    flow forward unchanged, but their parameters learn ``scale``× slower.
    """
    return backward_op(x.data, (x,), lambda g: (g * scale,), "grad_scale")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = list(tensors)
    out = np.stack([t.data for t in tensors], axis=axis)

    def grad_fn(g):
        pieces = np.split(g, len(tensors), axis=axis)
        return [np.squeeze(p, axis=axis) for p in pieces]

    return backward_op(out, tuple(tensors), grad_fn, "stack")


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = list(tensors)
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def grad_fn(g):
        return np.split(g, splits, axis=axis)

    return backward_op(out, tuple(tensors), grad_fn, "concat")
