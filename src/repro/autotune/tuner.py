"""Tile-size autotuning for the tex2D kernels (paper Fig. 8).

The paper searches tile sizes offline with the ytopt Bayesian-optimisation
framework; :class:`TileTuner` plays that role against the simulator's
latency.  Results are cached per (layer, device, backend) so a model's
tiles are tuned once and reused at inference.

Hot-path design (docs/performance.md): every objective evaluation routes
through a :class:`~repro.kernels.plancache.PlanCache`, so a search over K
candidate tiles builds the fetch trace **once** and re-buckets it per tile
(one-pass re-tiling) instead of running K full simulations.  The
exhaustive ``sweep`` method additionally fans candidate tiles out over a
``concurrent.futures`` process pool (``workers > 1``) with a deterministic
serial fallback — parallel and serial sweeps produce identical results.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autotune.bayesopt import BayesianOptimizer, TuneResult
from repro.autotune.random_search import grid_search, random_search
from repro.autotune.space import SearchSpace
from repro.gpusim.device import DeviceSpec
from repro.gpusim.trace import SamplePlan
from repro.kernels.config import LayerConfig, synth_offsets
from repro.kernels.dispatch import run_deform_op
from repro.kernels.plancache import PlanCache
from repro.kernels.tiling import enumerate_tiles

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class TuneKey:
    layer: LayerConfig
    device: str
    backend: str


def _evaluate_tiles(spec: DeviceSpec, backend: str, cfg: LayerConfig,
                    tiles: Sequence[Tuple[int, int]], seed: int,
                    offset_sigma: float, bound: Optional[float],
                    plan_cache: Optional[PlanCache]) -> List[float]:
    """Simulated sampling-kernel latency for each candidate tile.

    Deterministic given (spec, backend, cfg, seed, sigma, bound): the
    synthetic offsets are regenerated from the seed and the perf model
    never reads the input/weight values, so any process can compute any
    tile's latency and get the same number.
    """
    off = synth_offsets(cfg, sigma=offset_sigma, bound=bound, seed=seed)
    x = np.zeros(cfg.input_shape(), dtype=np.float32)
    w = np.zeros(cfg.weight_shape(), dtype=np.float32)
    plan = SamplePlan(seed=seed)
    out = []
    for tile in tiles:
        res = run_deform_op(backend, x, off, w, None, cfg, spec,
                            tile=tuple(tile), plan=plan,
                            compute_output=False, plan_cache=plan_cache)
        out.append(float(res.sample_kernel.duration_ms))
    return out


def _sweep_worker(payload) -> List[float]:
    """Process-pool entry point: evaluate one chunk of candidate tiles.

    Each worker owns a private plan cache, so a chunk costs one trace
    build plus one cheap regrouping per tile.
    """
    spec, backend, cfg, tiles, seed, sigma, bound = payload
    return _evaluate_tiles(spec, backend, cfg, tiles, seed, sigma, bound,
                           PlanCache(max_entries=2))


class TileTuner:
    """Search the (ty, tx) tile space for minimum simulated latency.

    ``store`` plugs in a persistent backing store
    (:class:`repro.autotune.store.TileStore`): tuning consults it before
    evaluating the objective — a populated store means **zero** objective
    evaluations — and writes fresh results back.
    ``objective_evaluations`` counts every simulator call this tuner
    actually made, so warm starts are observable.

    ``plan_cache`` controls trace reuse across candidate tiles:
    ``None`` (default) gives each search a private
    :class:`~repro.kernels.plancache.PlanCache`; pass a shared instance to
    pool traces with an engine, or ``False`` to force the legacy
    full-simulation-per-candidate behaviour.
    ``workers`` > 1 evaluates ``sweep`` candidates on a process pool.
    """

    def __init__(self, spec: DeviceSpec, backend: str = "tex2d",
                 budget: int = 16, seed: int = 0,
                 offset_sigma: float = 2.0, bound: Optional[float] = 7.0,
                 store=None, registry=None, plan_cache=None,
                 workers: int = 0):
        if backend not in ("tex2d", "tex2dpp"):
            raise ValueError("tile tuning applies to the texture backends")
        self.spec = spec
        self.backend = backend
        self.budget = budget
        self.seed = seed
        self.offset_sigma = offset_sigma
        self.bound = bound
        self.store = store
        self.plan_cache = plan_cache
        self.workers = int(workers)
        self.objective_evaluations = 0
        self._pool = None                  # lazy, persistent process pool
        self._cache: Dict[TuneKey, TuneResult] = {}
        # mirror tuning effort onto the shared metrics registry, and give
        # the backing store a home for its own counters if it has none
        self._eval_counter = None
        self._warm_counter = None
        if registry is not None:
            self._eval_counter = registry.counter(
                "autotune_objective_evaluations",
                help="simulator calls made by the tile tuner")
            self._warm_counter = registry.counter(
                "autotune_store_warm_hits",
                help="tunings satisfied from the tile store (zero evals)")
            if store is not None:
                store.bind_registry(registry)

    # ------------------------------------------------------------------
    def _search_plan_cache(self) -> Optional[PlanCache]:
        """The plan cache one search should evaluate through."""
        if self.plan_cache is False:
            return None
        if self.plan_cache is None:
            # Private per-search cache: candidate tiles share one trace.
            return PlanCache(max_entries=4)
        return self.plan_cache

    def _count_evaluations(self, n: int) -> None:
        self.objective_evaluations += n
        if self._eval_counter is not None:
            self._eval_counter.inc(n, backend=self.backend)

    def objective(self, cfg: LayerConfig):
        """Build the latency objective for one layer (shared inputs)."""
        rng = np.random.default_rng(self.seed)
        x = rng.normal(size=cfg.input_shape()).astype(np.float32)
        w = rng.normal(size=cfg.weight_shape()).astype(np.float32)
        off = synth_offsets(cfg, sigma=self.offset_sigma, bound=self.bound,
                            seed=self.seed)
        plan = SamplePlan(seed=self.seed)
        plan_cache = self._search_plan_cache()

        def latency(tile: Tuple[int, int]) -> float:
            self._count_evaluations(1)
            res = run_deform_op(self.backend, x, off, w, None, cfg,
                                self.spec, tile=tuple(tile), plan=plan,
                                compute_output=False, plan_cache=plan_cache)
            return res.sample_kernel.duration_ms

        return latency

    def space(self, cfg: LayerConfig) -> SearchSpace:
        return SearchSpace.from_tiles(enumerate_tiles(cfg, self.spec))

    # ------------------------------------------------------------------
    # exhaustive sweep (one-pass re-tiling + optional process pool)
    # ------------------------------------------------------------------
    def sweep(self, cfg: LayerConfig,
              tiles: Optional[Sequence[Tuple[int, int]]] = None
              ) -> TuneResult:
        """Evaluate every legal tile; the oracle search, made cheap.

        The re-tiled plan-cache path prices the whole space at one trace
        plus one regrouping per tile; with ``workers > 1`` the tile list
        is chunked across a process pool (results are position-stable and
        identical to the serial sweep).
        """
        tiles = [tuple(t) for t in (tiles if tiles is not None
                                    else enumerate_tiles(cfg, self.spec))]
        values = None
        if self.workers > 1 and len(tiles) > 1:
            values = self._sweep_parallel(cfg, tiles)
        if values is None:
            values = _evaluate_tiles(self.spec, self.backend, cfg, tiles,
                                     self.seed, self.offset_sigma,
                                     self.bound, self._search_plan_cache())
        self._count_evaluations(len(tiles))
        history = list(zip(tiles, values))
        best_point, best_value = min(history, key=lambda kv: kv[1])
        return TuneResult(best_point=best_point, best_value=best_value,
                          history=history)

    def _sweep_parallel(self, cfg: LayerConfig,
                        tiles: List[Tuple[int, int]]
                        ) -> Optional[List[float]]:
        """Fan tile chunks out over a process pool; None = use serial.

        The pool is created lazily and kept alive for the tuner's
        lifetime, so a multi-layer tune pays the worker spawn cost once.
        """
        from concurrent.futures import ProcessPoolExecutor

        nw = min(self.workers, len(tiles))
        chunks = [tiles[i::nw] for i in range(nw)]
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            futures = [
                self._pool.submit(_sweep_worker,
                                  (self.spec, self.backend, cfg, chunk,
                                   self.seed, self.offset_sigma, self.bound))
                for chunk in chunks]
            per_chunk = [f.result() for f in futures]
        except Exception as exc:  # pool unavailable (sandbox, pickling...)
            logger.warning("parallel tile sweep failed (%s); falling back "
                           "to the serial sweep", exc)
            self.close()
            return None
        values: List[Optional[float]] = [None] * len(tiles)
        for i, chunk_values in enumerate(per_chunk):
            values[i::nw] = chunk_values
        return values  # type: ignore[return-value]

    def close(self) -> None:
        """Shut the worker pool down (no-op when none was spawned)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "TileTuner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def tune(self, cfg: LayerConfig, method: str = "bayes") -> TuneResult:
        """Tune one layer; ``method`` in {'bayes', 'random', 'grid',
        'sweep'}.

        Lookup order: in-memory cache → backing store (warm start, zero
        objective evaluations) → fresh search (written back to the store).
        ``sweep`` is the exhaustive oracle on the one-pass re-tiled fast
        path; ``grid`` keeps the legacy per-candidate objective.
        """
        key = TuneKey(cfg, self.spec.name, f"{self.backend}:{method}")
        if key in self._cache:
            return self._cache[key]
        if self.store is not None:
            stored = self.store.get(cfg, self.spec.name, self.backend)
            if stored is not None:
                if self._warm_counter is not None:
                    self._warm_counter.inc(backend=self.backend)
                self._cache[key] = stored
                return stored
        if method == "bayes":
            result = BayesianOptimizer(self.space(cfg), seed=self.seed
                                       ).minimize(self.objective(cfg),
                                                  budget=self.budget)
        elif method == "random":
            result = random_search(self.space(cfg), self.objective(cfg),
                                   budget=self.budget, seed=self.seed)
        elif method == "grid":
            result = grid_search(self.space(cfg), self.objective(cfg))
        elif method == "sweep":
            result = self.sweep(cfg)
        else:
            raise ValueError(f"unknown tuning method {method!r}")
        self._cache[key] = result
        if self.store is not None:
            self.store.put(cfg, self.spec.name, self.backend, result)
        return result

    def best_tile(self, cfg: LayerConfig) -> Tuple[int, int]:
        return tuple(self.tune(cfg).best_point)

    def tune_layers(self, layers) -> Dict[LayerConfig, Tuple[int, int]]:
        """Tune a whole model's deformable layer shapes (deduplicated)."""
        return {cfg: self.best_tile(cfg) for cfg in dict.fromkeys(layers)}
