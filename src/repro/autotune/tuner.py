"""Tile-size autotuning for the tex2D kernels (paper Fig. 8).

The paper searches tile sizes offline with the ytopt Bayesian-optimisation
framework; :class:`TileTuner` plays that role against the simulator's
latency.  Results are cached per (layer, device, backend) so a model's
tiles are tuned once and reused at inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.autotune.bayesopt import BayesianOptimizer, TuneResult
from repro.autotune.random_search import grid_search, random_search
from repro.autotune.space import SearchSpace
from repro.gpusim.device import DeviceSpec
from repro.gpusim.trace import SamplePlan
from repro.kernels.config import LayerConfig, synth_offsets
from repro.kernels.dispatch import run_deform_op
from repro.kernels.tiling import enumerate_tiles


@dataclass(frozen=True)
class TuneKey:
    layer: LayerConfig
    device: str
    backend: str


class TileTuner:
    """Search the (ty, tx) tile space for minimum simulated latency.

    ``store`` plugs in a persistent backing store
    (:class:`repro.autotune.store.TileStore`): tuning consults it before
    evaluating the objective — a populated store means **zero** objective
    evaluations — and writes fresh results back.
    ``objective_evaluations`` counts every simulator call this tuner
    actually made, so warm starts are observable.
    """

    def __init__(self, spec: DeviceSpec, backend: str = "tex2d",
                 budget: int = 16, seed: int = 0,
                 offset_sigma: float = 2.0, bound: Optional[float] = 7.0,
                 store=None, registry=None):
        if backend not in ("tex2d", "tex2dpp"):
            raise ValueError("tile tuning applies to the texture backends")
        self.spec = spec
        self.backend = backend
        self.budget = budget
        self.seed = seed
        self.offset_sigma = offset_sigma
        self.bound = bound
        self.store = store
        self.objective_evaluations = 0
        self._cache: Dict[TuneKey, TuneResult] = {}
        # mirror tuning effort onto the shared metrics registry, and give
        # the backing store a home for its own counters if it has none
        self._eval_counter = None
        self._warm_counter = None
        if registry is not None:
            self._eval_counter = registry.counter(
                "autotune_objective_evaluations",
                help="simulator calls made by the tile tuner")
            self._warm_counter = registry.counter(
                "autotune_store_warm_hits",
                help="tunings satisfied from the tile store (zero evals)")
            if store is not None:
                store.bind_registry(registry)

    # ------------------------------------------------------------------
    def objective(self, cfg: LayerConfig):
        """Build the latency objective for one layer (shared inputs)."""
        rng = np.random.default_rng(self.seed)
        x = rng.normal(size=cfg.input_shape()).astype(np.float32)
        w = rng.normal(size=cfg.weight_shape()).astype(np.float32)
        off = synth_offsets(cfg, sigma=self.offset_sigma, bound=self.bound,
                            seed=self.seed)
        plan = SamplePlan(seed=self.seed)

        def latency(tile: Tuple[int, int]) -> float:
            self.objective_evaluations += 1
            if self._eval_counter is not None:
                self._eval_counter.inc(backend=self.backend)
            res = run_deform_op(self.backend, x, off, w, None, cfg,
                                self.spec, tile=tuple(tile), plan=plan,
                                compute_output=False)
            return res.sample_kernel.duration_ms

        return latency

    def space(self, cfg: LayerConfig) -> SearchSpace:
        return SearchSpace.from_tiles(enumerate_tiles(cfg, self.spec))

    # ------------------------------------------------------------------
    def tune(self, cfg: LayerConfig, method: str = "bayes") -> TuneResult:
        """Tune one layer; ``method`` in {'bayes', 'random', 'grid'}.

        Lookup order: in-memory cache → backing store (warm start, zero
        objective evaluations) → fresh search (written back to the store).
        """
        key = TuneKey(cfg, self.spec.name, f"{self.backend}:{method}")
        if key in self._cache:
            return self._cache[key]
        if self.store is not None:
            stored = self.store.get(cfg, self.spec.name, self.backend)
            if stored is not None:
                if self._warm_counter is not None:
                    self._warm_counter.inc(backend=self.backend)
                self._cache[key] = stored
                return stored
        space = self.space(cfg)
        objective = self.objective(cfg)
        if method == "bayes":
            result = BayesianOptimizer(space, seed=self.seed).minimize(
                objective, budget=self.budget)
        elif method == "random":
            result = random_search(space, objective, budget=self.budget,
                                   seed=self.seed)
        elif method == "grid":
            result = grid_search(space, objective)
        else:
            raise ValueError(f"unknown tuning method {method!r}")
        self._cache[key] = result
        if self.store is not None:
            self.store.put(cfg, self.spec.name, self.backend, result)
        return result

    def best_tile(self, cfg: LayerConfig) -> Tuple[int, int]:
        return tuple(self.tune(cfg).best_point)

    def tune_layers(self, layers) -> Dict[LayerConfig, Tuple[int, int]]:
        """Tune a whole model's deformable layer shapes (deduplicated)."""
        return {cfg: self.best_tile(cfg) for cfg in dict.fromkeys(layers)}
