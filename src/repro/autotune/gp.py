"""Minimal Gaussian-process regressor (RBF kernel) for Bayesian optimisation.

Exact GP with a squared-exponential kernel and a small noise nugget —
entirely adequate for the tens-of-points budgets autotuning uses (the paper
tunes offline with ytopt, which defaults to comparable surrogates).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve


def rbf_kernel(a: np.ndarray, b: np.ndarray, lengthscale: float,
               variance: float) -> np.ndarray:
    """Squared-exponential kernel matrix between row sets ``a`` and ``b``."""
    d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=-1)
    return variance * np.exp(-0.5 * d2 / lengthscale**2)


class GaussianProcess:
    """GP regression with fixed hyperparameters (fit rescales targets)."""

    def __init__(self, lengthscale: float = 0.2, variance: float = 1.0,
                 noise: float = 1e-4):
        if lengthscale <= 0 or variance <= 0 or noise < 0:
            raise ValueError("invalid GP hyperparameters")
        self.lengthscale = lengthscale
        self.variance = variance
        self.noise = noise
        self._x = None
        self._alpha = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std
        k = rbf_kernel(x, x, self.lengthscale, self.variance)
        k[np.diag_indices_from(k)] += self.noise
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, yn)
        self._x = x
        return self

    def predict(self, x_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new``."""
        if self._x is None:
            raise RuntimeError("predict() before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=np.float64))
        k_star = rbf_kernel(x_new, self._x, self.lengthscale, self.variance)
        mean = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        var = self.variance - np.einsum("ij,ji->i", k_star, v)
        var = np.maximum(var, 1e-12)
        return (mean * self._y_std + self._y_mean,
                np.sqrt(var) * self._y_std)
