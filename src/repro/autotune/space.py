"""Discrete search spaces for kernel autotuning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SearchSpace:
    """A finite space of integer-tuple configurations (e.g. (ty, tx) tiles).

    Points are exposed both as raw tuples and as a normalised float matrix
    in [0, 1]^d (log2-scaled, since tile extents are powers of two and their
    effect on latency is multiplicative).
    """

    points: Tuple[Tuple[int, ...], ...]

    def __post_init__(self):
        if not self.points:
            raise ValueError("empty search space")
        dims = {len(p) for p in self.points}
        if len(dims) != 1:
            raise ValueError("all points must share dimensionality")

    @property
    def dim(self) -> int:
        return len(self.points[0])

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def index(self, point: Tuple[int, ...]) -> int:
        return self.points.index(tuple(point))

    def normalized(self) -> np.ndarray:
        """(n_points, dim) matrix of log2-scaled coordinates in [0, 1]."""
        arr = np.log2(np.asarray(self.points, dtype=np.float64))
        lo = arr.min(axis=0)
        hi = arr.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        return (arr - lo) / span

    @classmethod
    def from_tiles(cls, tiles: Sequence[Tuple[int, int]]) -> "SearchSpace":
        return cls(points=tuple(tuple(t) for t in tiles))
