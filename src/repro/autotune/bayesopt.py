"""Bayesian optimiser over a finite search space (ytopt-style).

Sequential model-based optimisation: seed with a few random configurations,
fit the GP surrogate, and repeatedly evaluate the unvisited candidate with
the highest expected improvement.  Deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.autotune.acquisition import expected_improvement
from repro.autotune.gp import GaussianProcess
from repro.autotune.space import SearchSpace


@dataclass
class TuneResult:
    """Outcome of a tuning run."""

    best_point: Tuple[int, ...]
    best_value: float
    history: List[Tuple[Tuple[int, ...], float]] = field(default_factory=list)

    @property
    def evaluations(self) -> int:
        return len(self.history)

    def best_trace(self) -> List[float]:
        """Running best value after each evaluation (for convergence plots)."""
        trace, best = [], float("inf")
        for _, v in self.history:
            best = min(best, v)
            trace.append(best)
        return trace

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form (for the persistent tile store)."""
        return {
            "best_point": list(self.best_point),
            "best_value": float(self.best_value),
            "history": [[list(p), float(v)] for p, v in self.history],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuneResult":
        return cls(
            best_point=tuple(int(v) for v in payload["best_point"]),
            best_value=float(payload["best_value"]),
            history=[(tuple(int(c) for c in p), float(v))
                     for p, v in payload.get("history", [])],
        )


class BayesianOptimizer:
    """Minimise ``objective`` over a :class:`SearchSpace`."""

    def __init__(self, space: SearchSpace, n_init: int = 4,
                 lengthscale: float = 0.25, seed: int = 0):
        self.space = space
        self.n_init = max(1, min(n_init, len(space)))
        self.seed = seed
        self.lengthscale = lengthscale

    def minimize(self, objective: Callable[[Tuple[int, ...]], float],
                 budget: int = 16) -> TuneResult:
        budget = min(budget, len(self.space))
        rng = np.random.default_rng(self.seed)
        coords = self.space.normalized()
        points = list(self.space)
        order = rng.permutation(len(points))
        visited: List[int] = []
        history: List[Tuple[Tuple[int, ...], float]] = []

        def evaluate(idx: int) -> None:
            value = float(objective(points[idx]))
            visited.append(idx)
            history.append((points[idx], value))

        for idx in order[: self.n_init]:
            if len(history) >= budget:
                break
            evaluate(int(idx))

        while len(history) < budget:
            y = np.array([v for _, v in history])
            x = coords[visited]
            gp = GaussianProcess(lengthscale=self.lengthscale).fit(x, y)
            remaining = [i for i in range(len(points)) if i not in visited]
            if not remaining:
                break
            mean, std = gp.predict(coords[remaining])
            ei = expected_improvement(mean, std, best=float(y.min()))
            evaluate(remaining[int(np.argmax(ei))])

        best_point, best_value = min(history, key=lambda kv: kv[1])
        return TuneResult(best_point=best_point, best_value=best_value,
                          history=history)
