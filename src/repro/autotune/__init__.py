"""Offline autotuning (paper Fig. 8): Bayesian optimisation over tile sizes.

Plays the role of the ytopt framework the paper uses: a GP surrogate with
expected-improvement acquisition searches the discrete (ty, tx) tile space
against the simulator's kernel latency, with random- and grid-search
baselines for comparison.
"""

from repro.autotune.space import SearchSpace
from repro.autotune.gp import GaussianProcess, rbf_kernel
from repro.autotune.acquisition import expected_improvement, lower_confidence_bound
from repro.autotune.bayesopt import BayesianOptimizer, TuneResult
from repro.autotune.random_search import grid_search, random_search
from repro.autotune.store import (FORMAT_VERSION, TUNER_VERSION, TileStore,
                                  geometry_key)
from repro.autotune.tuner import TileTuner

__all__ = [
    "SearchSpace", "GaussianProcess", "rbf_kernel",
    "expected_improvement", "lower_confidence_bound",
    "BayesianOptimizer", "TuneResult",
    "random_search", "grid_search",
    "TileTuner",
    "TileStore", "geometry_key", "TUNER_VERSION", "FORMAT_VERSION",
]
