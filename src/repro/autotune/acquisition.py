"""Acquisition functions for Bayesian optimisation (minimisation form)."""

from __future__ import annotations

import numpy as np
from scipy.stats import norm


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.01) -> np.ndarray:
    """EI for *minimisation*: expected drop below the incumbent ``best``."""
    mean = np.asarray(mean, dtype=np.float64)
    std = np.maximum(np.asarray(std, dtype=np.float64), 1e-12)
    improvement = best - mean - xi
    z = improvement / std
    return improvement * norm.cdf(z) + std * norm.pdf(z)


def lower_confidence_bound(mean: np.ndarray, std: np.ndarray,
                           kappa: float = 2.0) -> np.ndarray:
    """LCB score (lower = more promising) — returned negated so that larger
    is better, matching the EI convention used by the optimiser."""
    return -(np.asarray(mean) - kappa * np.asarray(std))
