"""Persistent tile store — autotuned tiles as a deployment artifact.

The paper's deployment story (Section III-B, Fig. 8) tunes tiles *offline*
and reuses them at inference.  :class:`TileStore` gives those tiles a
durable home: a JSON file keyed by (layer geometry, device name, backend,
tuner version), so a warm engine start binds every tile without a single
tuner objective evaluation, and tile sets can be exported/imported between
machines like any other model artifact.

Robustness rules:

* **Atomic writes** — the file is replaced via a same-directory temp file,
  never written in place, so a crash mid-save cannot corrupt the store.
* **Corrupt files** are quarantined (renamed to ``<path>.corrupt``) and the
  store starts empty rather than failing the engine.
* **Stale entries** — records written by a different ``TUNER_VERSION`` or
  file format are preserved on disk but never served, so bumping the tuner
  invalidates old tiles without deleting anybody's data.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.autotune.bayesopt import TuneResult
from repro.kernels.config import LayerConfig

logger = logging.getLogger(__name__)

#: Bump when the tuner's objective or search space changes meaning —
#: entries from older versions are ignored (stale) but kept on disk.
TUNER_VERSION = 1

#: Store file format version (the envelope, not the tuner).
FORMAT_VERSION = 1


def geometry_key(cfg: LayerConfig) -> str:
    """Canonical string form of every geometry field the tile depends on.

    Batch is excluded for the same reason it is absent from
    :func:`repro.kernels.tiling.tile_key`: tiles partition the output plane;
    batch only scales the grid.
    """
    return (f"c{cfg.in_channels}x{cfg.out_channels}"
            f"_h{cfg.height}w{cfg.width}"
            f"_k{cfg.kernel_size}s{cfg.stride}p{cfg.padding}d{cfg.dilation}"
            f"_g{cfg.deformable_groups}")


def entry_key(cfg: LayerConfig, device: str, backend: str,
              tuner_version: int = TUNER_VERSION) -> str:
    """The flat JSON key one tuned tile lives under."""
    return f"{device}|{backend}|v{tuner_version}|{geometry_key(cfg)}"


class TileStore:
    """Disk-backed map from (geometry, device, backend, version) to tiles.

    ``path=None`` gives an in-memory store with the same interface (useful
    for tests and for engines that want sharing without persistence).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 tuner_version: int = TUNER_VERSION, registry=None):
        self.path = Path(path) if path is not None else None
        self.tuner_version = tuner_version
        #: raw JSON payloads, including stale-version entries (kept, unserved)
        self._entries: Dict[str, dict] = {}
        self._lookup_counter = None
        self._save_counter = None
        self._lookup_window = None
        if registry is not None:
            self.bind_registry(registry)
        if self.path is not None:
            self.load()

    def bind_registry(self, registry) -> "TileStore":
        """Register the store's counters onto a shared MetricsRegistry
        (``tile_store_lookups{result=hit|miss}``, ``tile_store_saves``)
        plus a windowed lookup-rate series (count per wall-clock window
        on ``tile_store_lookup_events`` — see docs/observability.md)."""
        if self._lookup_counter is None:
            self._lookup_counter = registry.counter(
                "tile_store_lookups",
                help="persistent tile-store lookups by result")
            self._save_counter = registry.counter(
                "tile_store_saves", help="persistent tile-store writes")
            self._lookup_window = registry.windowed_histogram(
                "tile_store_lookup_events",
                help="tile-store lookups per wall-clock window by result "
                     "(per-window count == lookup rate)")
        return self

    def _count_lookup(self, result: str) -> None:
        if self._lookup_counter is not None:
            self._lookup_counter.inc(result=result)
        if self._lookup_window is not None:
            self._lookup_window.observe(1.0, result=result)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def load(self) -> int:
        """(Re)load from disk; returns the number of entries now held."""
        self._entries = {}
        if self.path is None or not self.path.exists():
            return 0
        try:
            payload = json.loads(self.path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("store root must be a JSON object")
            version = payload.get("format_version")
            entries = payload.get("entries", {})
            if not isinstance(entries, dict):
                raise ValueError("'entries' must be a JSON object")
            if version != FORMAT_VERSION:
                logger.warning("tile store %s has format_version %r "
                               "(expected %d); ignoring its entries",
                               self.path, version, FORMAT_VERSION)
                return 0
            self._entries = {str(k): v for k, v in entries.items()
                             if self._valid_entry(v)}
        except (ValueError, OSError) as exc:
            quarantine = self.path.with_suffix(self.path.suffix + ".corrupt")
            logger.warning("tile store %s is unreadable (%s); starting "
                           "empty and quarantining the old file to %s",
                           self.path, exc, quarantine)
            try:
                os.replace(self.path, quarantine)
            except OSError:
                pass
        return len(self._entries)

    @staticmethod
    def _valid_entry(value: object) -> bool:
        if not isinstance(value, dict):
            return False
        tile = value.get("tile")
        return (isinstance(tile, list) and len(tile) == 2
                and all(isinstance(t, int) and t > 0 for t in tile))

    def save(self) -> None:
        """Atomically rewrite the backing file (no-op for memory stores)."""
        if self.path is None:
            return
        payload = {"format_version": FORMAT_VERSION,
                   "entries": self._entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                   prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # lookup / update
    # ------------------------------------------------------------------
    def get(self, cfg: LayerConfig, device: str,
            backend: str) -> Optional[TuneResult]:
        """The stored tuning result for this geometry, or None."""
        raw = self._entries.get(entry_key(cfg, device, backend,
                                          self.tuner_version))
        if raw is None:
            self._count_lookup("miss")
            return None
        try:
            result = TuneResult.from_dict(raw["result"]
                                          if "result" in raw
                                          else {"best_point": raw["tile"],
                                                "best_value": raw.get(
                                                    "best_ms", 0.0)})
        except (KeyError, TypeError, ValueError):
            logger.warning("tile store entry for %s/%s/%s is malformed; "
                           "treating as a miss",
                           geometry_key(cfg), device, backend)
            self._count_lookup("miss")
            return None
        self._count_lookup("hit")
        return result

    def get_tile(self, cfg: LayerConfig, device: str,
                 backend: str) -> Optional[Tuple[int, int]]:
        result = self.get(cfg, device, backend)
        return tuple(result.best_point) if result is not None else None

    def put(self, cfg: LayerConfig, device: str, backend: str,
            result: TuneResult) -> None:
        """Record one tuning outcome and persist immediately."""
        self._entries[entry_key(cfg, device, backend, self.tuner_version)] = {
            "geometry": geometry_key(cfg),
            "device": device,
            "backend": backend,
            "tuner_version": self.tuner_version,
            "tile": [int(v) for v in result.best_point],
            "best_ms": float(result.best_value),
            "evaluations": result.evaluations,
            "result": result.to_dict(),
        }
        if self._save_counter is not None:
            self._save_counter.inc()
        self.save()

    # ------------------------------------------------------------------
    # bulk operations (CLI export/import)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[str]:
        return sorted(self._entries)

    def rows(self) -> List[dict]:
        """Flat per-entry dicts for tabular display."""
        out = []
        for key in self.keys():
            e = self._entries[key]
            out.append({"key": key,
                        "geometry": e.get("geometry", "?"),
                        "device": e.get("device", "?"),
                        "backend": e.get("backend", "?"),
                        "tuner_version": e.get("tuner_version", "?"),
                        "tile": tuple(e.get("tile", ())),
                        "best_ms": e.get("best_ms"),
                        "evaluations": e.get("evaluations")})
        return out

    def export_payload(self) -> dict:
        """The portable JSON object ``tiles export`` writes."""
        return {"format_version": FORMAT_VERSION,
                "entries": dict(self._entries)}

    def merge(self, payload: dict, overwrite: bool = False) -> int:
        """Import entries from another store's exported payload.

        Returns the number of entries added (or replaced).  Entries with an
        unknown format version or malformed tiles are skipped.
        """
        if payload.get("format_version") != FORMAT_VERSION:
            logger.warning("refusing to merge tile payload with "
                           "format_version %r", payload.get("format_version"))
            return 0
        added = 0
        for key, value in payload.get("entries", {}).items():
            if not self._valid_entry(value):
                continue
            if key in self._entries and not overwrite:
                continue
            self._entries[str(key)] = value
            added += 1
        if added:
            self.save()
        return added
