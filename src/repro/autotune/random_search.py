"""Random-search baseline for the autotuner comparison."""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.autotune.bayesopt import TuneResult
from repro.autotune.space import SearchSpace


def random_search(space: SearchSpace,
                  objective: Callable[[Tuple[int, ...]], float],
                  budget: int = 16, seed: int = 0) -> TuneResult:
    """Evaluate ``budget`` distinct random configurations; keep the best."""
    budget = min(budget, len(space))
    rng = np.random.default_rng(seed)
    points = list(space)
    order = rng.permutation(len(points))[:budget]
    history = [(points[int(i)], float(objective(points[int(i)])))
               for i in order]
    best_point, best_value = min(history, key=lambda kv: kv[1])
    return TuneResult(best_point=best_point, best_value=best_value,
                      history=history)


def grid_search(space: SearchSpace,
                objective: Callable[[Tuple[int, ...]], float]) -> TuneResult:
    """Exhaustive sweep — the oracle the Fig. 8 bench compares against."""
    history = [(p, float(objective(p))) for p in space]
    best_point, best_value = min(history, key=lambda kv: kv[1])
    return TuneResult(best_point=best_point, best_value=best_value,
                      history=history)
