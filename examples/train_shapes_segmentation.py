"""Instance segmentation on the deformed-shapes dataset.

Trains YolactLite (with DEFCON's deformable placement) on the procedural
dataset, evaluates COCO-style box/mask mAP, and renders one validation
image with its detections as ASCII art.

Run:  python examples/train_shapes_segmentation.py   (~3-4 minutes)
"""

import numpy as np

from repro.data import CLASS_NAMES, ShapesDataset
from repro.models import build_yolact
from repro.nas import manual_interval_placement
from repro.pipeline import (TrainConfig, evaluate_detector, train_detector)

train_set = ShapesDataset.generate(160, size=64, seed=0, deformation=1.2)
val_set = ShapesDataset.generate(64, size=64, seed=999, deformation=1.2)
print(f"dataset: {len(train_set)} train / {len(val_set)} val images, "
      f"classes {CLASS_NAMES}")

placement = manual_interval_placement(9, 3)
model = build_yolact("r50s", placement=placement, lightweight=True,
                     bound=7.0, seed=0)
print(f"model: YolactLite r50s with {sum(placement)} deformable sites "
      f"(lightweight offset heads, bound P=7), "
      f"{model.num_parameters():,} parameters")

log = train_detector(model, train_set,
                     TrainConfig(epochs=20, batch_size=16),
                     progress=lambda m: print("  " + m))
result = evaluate_detector(model, val_set)
print(f"\nval: box mAP {100 * result.box_map:.2f}, "
      f"mask mAP {100 * result.mask_map:.2f}, "
      f"mask AP50 {100 * result.mask_ap50:.2f}")

# ----------------------------------------------------------------------
# ASCII rendering of one validation image with detections
# ----------------------------------------------------------------------
sample = val_set[0]
dets = model.detect(sample.image[None], score_threshold=0.15, max_dets=4)
print(f"\nimage 0: {len(sample.instances)} GT instances "
      f"({', '.join(CLASS_NAMES[i.label] for i in sample.instances)}); "
      f"{len(dets)} detections")

canvas = np.full((32, 32), ".", dtype="<U1")
for inst in sample.instances:
    gt_small = inst.mask[::2, ::2]
    canvas[gt_small] = "o"
for d in dets:
    pred_small = d.mask[::2, ::2]
    canvas[pred_small & (canvas == "o")] = "#"   # overlap: correct pixels
    canvas[pred_small & (canvas == ".")] = "+"   # prediction-only pixels
print("legend: o = GT only, + = prediction only, # = overlap")
for row in canvas:
    print("".join(row))
for d in dets:
    print(f"  det: {CLASS_NAMES[d.label]} score={d.score:.2f} "
          f"box={np.round(d.box, 1)}")
