"""Tile-size autotuning demo (paper Fig. 8, ytopt-style).

Sweeps the full (ty, tx) tile space for one deformable layer on the
simulated Xavier, then shows the Bayesian-optimisation tuner matching the
exhaustive oracle at half the evaluations, against a random-search
baseline.

Run:  python examples/autotune_tiles.py
"""

import numpy as np

from repro.autotune import TileTuner
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig
from repro.pipeline import format_table

cfg = LayerConfig(256, 256, 69, 69)
print(f"Tuning tex2D tile size for layer {cfg.label()} on {XAVIER.name}\n")

tuner = TileTuner(XAVIER, backend="tex2d", budget=14, seed=0)

# Exhaustive oracle: the full latency landscape.
grid = tuner.tune(cfg, "grid")
landscape = sorted(grid.history, key=lambda kv: kv[1])
print("latency landscape (best and worst five tiles):")
for tile, ms in landscape[:5]:
    print(f"  {tile}: {ms:.3f} ms")
print("  ...")
for tile, ms in landscape[-5:]:
    print(f"  {tile}: {ms:.3f} ms")
spread = landscape[-1][1] / landscape[0][1]
print(f"worst/best = {spread:.2f}x — tile choice matters "
      f"(the paper plots this on a log scale)\n")

bayes = tuner.tune(cfg, "bayes")
rand = tuner.tune(cfg, "random")
rows = [
    ["exhaustive oracle", len(grid.history), f"{grid.best_point}",
     round(grid.best_value, 4)],
    ["Bayesian optimisation", bayes.evaluations, f"{bayes.best_point}",
     round(bayes.best_value, 4)],
    ["random search", rand.evaluations, f"{rand.best_point}",
     round(rand.best_value, 4)],
]
print(format_table(["method", "evaluations", "best tile", "best ms"], rows))

print("\nBO convergence (running best after each evaluation):")
print("  " + " -> ".join(f"{v:.3f}" for v in bayes.best_trace()))
