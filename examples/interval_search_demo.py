"""Interval search demo (paper Algorithm 1, Fig. 6).

Runs the gradient-based interval search on a scaled ResNet backbone over
the deformed-shapes classification task: a dual-path supernet samples
regular-vs-deformable per site with Gumbel-Softmax, a latency penalty
(built from the simulated Jetson's per-layer latency table) constrains the
deformable budget, and the final placement is compared against YOLACT++'s
manual interval-3 policy.

Run:  python examples/interval_search_demo.py      (~2-3 minutes)
"""

from repro.models import STAGE_BLOCKS
from repro.nas.search import SearchConfig
from repro.pipeline import (AccuracyExperiment, DefconConfig,
                            ExperimentSettings, TrainConfig,
                            format_placement_diagram)

settings = ExperimentSettings(
    arch="r50s", task="classification",
    train_samples=200, val_samples=100, deformation=1.0,
    train=TrainConfig(epochs=5, batch_size=16, lr=1e-2),
    search=SearchConfig(search_epochs=3, finetune_epochs=3, beta=0.05),
)
exp = AccuracyExperiment(settings)

print("Building the paper-scale latency table t(w_n) for the "
      f"{settings.num_sites} candidate sites...")
latencies = exp.site_latencies_ms()
for i, t in enumerate(latencies):
    print(f"  site {i}: deformable op {t:.2f} ms on {exp.device.name}")

manual = exp.manual_placement(interval=3)
print("\nRunning the interval search (Gumbel-Softmax dual-path supernet)...")
result = exp.run_search(DefconConfig(search=True, boundary=True),
                        progress=lambda msg: print("  " + msg))

stages = list(STAGE_BLOCKS[settings.arch][1:])
print()
print(format_placement_diagram(manual, stages, label="manual interval-3"))
print(format_placement_diagram(result.placement, stages,
                               label="interval search  "))
print(f"\nestimated deformable latency of the searched placement: "
      f"{result.estimated_latency_ms:.2f} ms")

print("\nTraining both placements to compare accuracy...")
manual_row = exp.run_fixed("manual", manual, DefconConfig(boundary=True))
ours_row = exp.run_fixed("searched", result.placement,
                         DefconConfig(boundary=True))
print(f"  manual   : {manual_row.num_dcn} DCNs, "
      f"accuracy {100 * manual_row.accuracy:.1f} %")
print(f"  searched : {ours_row.num_dcn} DCNs, "
      f"accuracy {100 * ours_row.accuracy:.1f} %")
