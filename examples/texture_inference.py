"""Texture-hardware inference deep dive (paper Section III-B).

Walks through the full texel-based optimisation story on both simulated
GPUs: staging a feature map into a 2-D layered texture, hardware bilinear
filtering in 1.8 fixed point, the fp16-offset tex2D++ variant, autotuned
tile sizes, and the resulting end-to-end Table III trajectory.

Run:  python examples/texture_inference.py
"""

import numpy as np

from repro.autotune import TileTuner
from repro.gpusim import (RTX_2080TI, XAVIER, LayeredTexture2D,
                          TextureDescriptor, fits_texture_limits)
from repro.kernels import LayerConfig, TABLE2_LAYERS, run_layer_all_backends
from repro.nas import manual_interval_placement
from repro.pipeline import (format_speedup_bars, format_table,
                            network_latency_ms, paper_scale_geometry)

rng = np.random.default_rng(0)

# ----------------------------------------------------------------------
# 1. Layered textures and the device limits (paper §III-B)
# ----------------------------------------------------------------------
fm = rng.normal(size=(1, 256, 69, 69)).astype(np.float32)
tex = LayeredTexture2D.from_feature_map(
    fm, desc=TextureDescriptor(address_mode="border"), spec=XAVIER)
print(f"feature map {fm.shape} -> layered texture with {tex.num_layers} "
      f"layers of extent {tex.extent}")
print(f"batch x channels <= 2048 limit holds for batch 8? "
      f"{fits_texture_limits((8, 256, 69, 69), XAVIER)}")

# A single hardware fetch: the texture unit interpolates in fixed point.
v = tex.fetch_at_pixel_coords(np.array([3]),
                              np.array([10.37], dtype=np.float32),
                              np.array([22.81], dtype=np.float32))
print(f"tex2DLayered(layer=3, y=10.37, x=22.81) = {float(v[0]):.5f}")

# ----------------------------------------------------------------------
# 2. Per-layer speedups on both devices (Tables II and IV)
# ----------------------------------------------------------------------
for spec in (XAVIER, RTX_2080TI):
    labels, speedups = [], []
    for cfg in TABLE2_LAYERS:
        res = run_layer_all_backends(cfg, spec, bound=7.0,
                                     compute_output=False)
        bl = res["pytorch"].sample_kernel.duration_ms
        labels.append(cfg.label())
        speedups.append(bl / res["tex2dpp"].sample_kernel.duration_ms)
    print()
    print(format_speedup_bars(labels, speedups,
                              title=f"tex2D++ speedup on {spec.name}"))

# ----------------------------------------------------------------------
# 3. Tile autotuning (Fig. 8) for one layer
# ----------------------------------------------------------------------
cfg = LayerConfig(256, 256, 69, 69)
tuner = TileTuner(XAVIER, backend="tex2dpp", budget=14, seed=0)
result = tuner.tune(cfg)
print(f"\nautotuned tile for {cfg.label()}: {result.best_point} "
      f"({result.best_value:.3f} ms after {result.evaluations} evals; "
      f"convergence {['%.3f' % v for v in result.best_trace()]})")

# ----------------------------------------------------------------------
# 4. End-to-end: the Table III trajectory on the Xavier
# ----------------------------------------------------------------------
geo = paper_scale_geometry("r101s")
manual = manual_interval_placement(geo.num_sites, 3)
searched = list(manual)
on = [i for i, v in enumerate(searched) if v]
searched[on[1]] = False
baseline = network_latency_ms(geo, manual, XAVIER).total_ms
rows = []
for label, placement, kw in (
        ("YOLACT++ baseline", manual, {}),
        ("interval search", searched, {}),
        ("search + tex2D", searched, dict(backend="tex2d")),
        ("search + light + tex2D++", searched,
         dict(backend="tex2dpp", lightweight=True, bound=7.0))):
    t = network_latency_ms(geo, placement, XAVIER, **kw).total_ms
    rows.append([label, sum(placement), round(t, 1),
                 f"{baseline / t:.2f}x"])
print()
print(format_table(["configuration", "# DCNs", "ms", "speedup"], rows,
                   title="End-to-end on the Xavier (Table III trajectory; "
                         "paper reaches 2.80x)"))
