"""Quickstart: the DEFCON deformable convolution in five minutes.

Builds a deformable layer with the paper's optimisations (lightweight
offset head, bounded deformation), trains it one step, then runs the same
operator through the three inference backends on the simulated Jetson AGX
Xavier and prints the nvprof-style comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.deform import DeformConv2d
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig, run_deform_op
from repro.pipeline import format_table
from repro.tensor import Tensor

rng = np.random.default_rng(0)

# ----------------------------------------------------------------------
# 1. A deformable convolution layer (Fig. 4b: lightweight + bounded)
# ----------------------------------------------------------------------
layer = DeformConv2d(in_channels=16, out_channels=32, kernel_size=3,
                     lightweight=True, bound=7.0, rng=rng)
x = Tensor(rng.normal(size=(2, 16, 32, 32)).astype(np.float32),
           requires_grad=True)
y = layer(x)
print(f"forward: {x.shape} -> {y.shape}   ({layer})")

# One training step — offsets, filter and offset head all receive grads.
loss = (y * y).mean()
loss.backward()
print(f"backward: loss={loss.item():.4f}, "
      f"{sum(p.grad is not None for p in layer.parameters())} parameter "
      f"tensors received gradients")

# ----------------------------------------------------------------------
# 2. The same operator through the three inference backends
# ----------------------------------------------------------------------
cfg = LayerConfig(64, 64, 56, 56)
x_np = rng.normal(size=cfg.input_shape()).astype(np.float32)
w_np = rng.normal(size=cfg.weight_shape()).astype(np.float32)
from repro.kernels import synth_offsets

off = synth_offsets(cfg, sigma=2.0, bound=7.0, seed=1)

rows = []
outputs = {}
for backend in ("pytorch", "tex2d", "tex2dpp"):
    res = run_deform_op(backend, x_np, off, w_np, None, cfg, XAVIER,
                        compute_output=True)
    s = res.sample_kernel
    outputs[backend] = res.output
    rows.append([backend, round(s.duration_ms, 3), round(s.mflop, 1),
                 round(s.gld_efficiency, 1), int(s.tex_cache_requests),
                 round(s.tex_cache_hit_rate, 1)])
print()
print(format_table(
    ["backend", "sample kernel (ms)", "MFLOP", "GLD eff (%)",
     "tex requests", "tex hit (%)"],
    rows, title=f"Deformable op {cfg.label()} on {XAVIER.name}"))

err = np.abs(outputs["tex2d"] - outputs["pytorch"]).max()
scale = np.abs(outputs["pytorch"]).max()
print(f"\ntex2D vs software bilinear: max |err| = {err:.5f} "
      f"({100 * err / scale:.3f} % of output range) — the 1.8 fixed-point "
      f"filtering of the texture unit, no accuracy impact")
