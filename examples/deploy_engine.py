"""Deployment walkthrough: a trained model on the simulated texture backends.

The full DEFCON inference story on one screen:

1. train a small YolactLite with the interval-3 DCN placement;
2. bind its deformable layers to tex2D++ with autotuned tiles
   (:class:`repro.pipeline.DefconEngine`);
3. run detection — the layers execute with their *learned* offsets through
   the functional texture unit — and compare detections against the
   software path (accuracy parity);
4. read the nvprof-style counters and the learned-deformation report.

Run:  python examples/deploy_engine.py   (~2 minutes)
"""

import numpy as np

from repro.data import StreamingShapesDataset
from repro.deform import ascii_heatmap, deformation_magnitude_map, \
    model_offset_report
from repro.gpusim import XAVIER
from repro.models import build_yolact
from repro.nas import manual_interval_placement
from repro.pipeline import (DefconEngine, TrainConfig, format_table,
                            train_detector)

# ----------------------------------------------------------------------
# 1. a (briefly) trained model with deformable layers
# ----------------------------------------------------------------------
stream = StreamingShapesDataset(epoch_size=96, deformation=1.0, seed=0,
                                num_objects=1)
placement = manual_interval_placement(9, 3)
model = build_yolact("r50s", placement=placement, bound=7.0, seed=0)
print(f"training YolactLite with {sum(placement)} DCN sites "
      f"({model.num_parameters():,} parameters)...")
train_detector(model, stream, TrainConfig(epochs=6, batch_size=16),
               progress=lambda m: print("  " + m))

# ----------------------------------------------------------------------
# 2-3. deploy on the simulated Xavier with tex2D++ and compare
# ----------------------------------------------------------------------
val = stream.materialise(8, seed=1)
images = np.stack([s.image for s in val.samples])
sw_dets = model.detect(images, score_threshold=0.1)

engine = DefconEngine(model, XAVIER, backend="tex2dpp", autotune=True,
                      tune_budget=8)
print(f"\nautotuned tiles: {engine.tiles}")
hw_dets = engine.detect(images, score_threshold=0.1)
print(f"software path: {len(sw_dets)} detections; "
      f"tex2D++ path: {len(hw_dets)} detections "
      f"(fixed-point filtering is below decision thresholds)")
print(f"simulated deformable time for the batch: "
      f"{engine.deformable_latency_ms():.3f} ms on {XAVIER.name}")

# ----------------------------------------------------------------------
# 4. nvprof counters + what the network learned to deform
# ----------------------------------------------------------------------
rows = [[r["kernel"], r["time_ms"], r["mflop"], r["gld_efficiency_pct"],
         r["tex_requests"], r["tex_hit_rate_pct"]]
        for r in engine.nvprof_rows()]
print()
print(format_table(["kernel", "ms", "MFLOP", "GLD eff %", "tex req",
                    "tex hit %"], rows,
                   title="nvprof-style counters (whole batch)"))

report = model_offset_report(model)
print("\nlearned deformations per DCN site:")
for name, stats in report.items():
    print(f"  {name}: {stats.row()}")

first = next(m for m in model.modules()
             if getattr(m, "last_offsets", None) is not None)
print("\ndeformation-magnitude map of the first DCN site "
      "(darker = larger learned displacement):")
print(ascii_heatmap(deformation_magnitude_map(first.last_offsets.data)))
