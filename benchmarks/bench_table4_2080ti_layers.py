"""Table IV — layer-wise deformable-op latency on the RTX 2080 Ti.

Same six shapes as Table II on the discrete GPU.  The paper's speedups
(1.08–1.30×) are lower than the Xavier's — the big-L2, high-bandwidth part
leaves less headroom for the texture path, which the calibrated model
reproduces.
"""

import numpy as np

from repro.gpusim import RTX_2080TI

from bench_table2_xavier_layers import regenerate
from common import run_once


def test_table4_2080ti(benchmark):
    rows = run_once(
        benchmark,
        lambda: regenerate(spec=RTX_2080TI, name="table4_2080ti_layers"))
    speedups = np.array([float(r[-1][:-1]) for r in rows])
    assert (speedups > 0.95).all()
    assert 1.0 < speedups.mean() < 1.45
