"""Table I — accuracy of the optimised DCN placements.

Paper rows per backbone: YOLACT (0 DCNs), YOLACT++ with DCNs at every
candidate site, YOLACT++ with the manual interval-3 placement, and "Ours"
(interval-searched placement + bounded offsets + lightweight head).  The
reproduction targets the *orderings* on the deformed-shapes task:

* DCN configurations beat the DCN-free baseline;
* the searched placement holds accuracy at (or above) the manual
  interval's level with the same or a smaller DCN budget.

Accuracy metric: single-object shape-classification accuracy on the same
deformed-shapes distribution (the proxy protocol — see EXPERIMENTS.md;
the full instance-segmentation mAP stack is exercised by
examples/train_shapes_segmentation.py and the integration tests, but
pure-NumPy training budgets cannot reach mAP levels where per-row
orderings are statistically meaningful).
"""

import numpy as np
import pytest

from repro.nas.search import SearchConfig
from repro.pipeline import (AccuracyExperiment, DefconConfig,
                            ExperimentSettings, TrainConfig, format_table)

from common import run_once, write_bench_json, write_result


def run_arch(arch: str):
    settings = ExperimentSettings(
        arch=arch, train_samples=300, val_samples=150, deformation=1.0,
        train=TrainConfig(epochs=8, batch_size=16, optimizer="sgd", lr=1e-2),
        search=SearchConfig(search_epochs=3, finetune_epochs=3, beta=0.05),
    )
    exp = AccuracyExperiment(settings)
    n = settings.num_sites
    manual = exp.manual_placement(3)
    rows = [
        exp.run_fixed("YOLACT (no DCN)", [False] * n),
        exp.run_fixed("YOLACT++ (all DCN)", [True] * n,
                      DefconConfig(boundary=True)),
        exp.run_fixed("YOLACT++ (interval 3)", manual,
                      DefconConfig(boundary=True)),
    ]
    # "Ours": searched placement under the manual interval's latency
    # budget, with bounded offsets.  (The lightweight head's accuracy cost
    # is Table III's story — the paper's Table I "Ours" likewise reports
    # its most accurate optimised configuration.)
    ours_cfg = DefconConfig(search=True, boundary=True)
    latencies = exp.site_latencies_ms()
    budget = sum(t for t, u in zip(latencies, manual) if u)
    search = exp.run_search(ours_cfg, target_latency_ms=budget)
    rows.append(exp.evaluate_searched(search, ours_cfg))
    return rows


def regenerate():
    all_rows = {}
    table = []
    for arch in ("r50s", "r101s"):
        rows = run_arch(arch)
        all_rows[arch] = rows
        for r in rows:
            table.append([r.method, arch, r.num_dcn,
                          round(100 * r.accuracy, 2)])
    text = format_table(
        ["method", "backbone", "# DCNs", "accuracy (%)"],
        table,
        title="Table I analogue — deformed-shapes accuracy "
              "(classification protocol; paper reports COCO mask mAP)",
    )
    write_result("table1_accuracy", text)
    write_bench_json(
        "table1_accuracy",
        {"rows": [{"method": r.method, "backbone": arch,
                   "num_dcn": r.num_dcn, "accuracy": r.accuracy}
                  for arch, rows in all_rows.items() for r in rows]},
        device=None, task="classification-proxy")
    return all_rows


def test_table1_accuracy(benchmark):
    all_rows = run_once(benchmark, regenerate)
    for arch, rows in all_rows.items():
        plain, all_dcn, manual, ours = rows
        best_dcn = max(all_dcn.accuracy, manual.accuracy, ours.accuracy)
        # deformable convolutions beat rigid kernels on this task
        assert best_dcn > plain.accuracy, arch
        # the searched model holds accuracy against the manual interval
        # (tolerance: short runs on a synthetic task)
        assert ours.accuracy >= manual.accuracy - 0.08, arch
        # with a constrained DCN budget
        assert 0 < ours.num_dcn <= manual.num_dcn + 1, arch
