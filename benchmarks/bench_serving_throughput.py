"""Serving throughput — batched vs sequential single-image requests.

Not a paper figure: the deployment-side consequence of the paper's kernel
design.  The per-launch overhead the fused tex2D kernels already minimise
(Table II's launch-count column) is amortised further by batching: the
request batcher coalesces single-image requests into batched engine calls,
so the fixed launch/prologue cost is shared by the whole batch and the
per-image *simulated* deformable latency drops strictly below the
sequential one-request-at-a-time baseline on the Xavier preset.
"""

import numpy as np
import pytest

from repro.gpusim import XAVIER
from repro.models import build_classifier
from repro.nas import manual_interval_placement
from repro.pipeline import DefconEngine, format_table
from repro.serve import RequestBatcher

from common import run_once, write_bench_json, write_result

PLACEMENT = manual_interval_placement(9, 3)
NUM_REQUESTS = 8
BATCH_SIZES = (2, 4, 8)


def regenerate():
    model = build_classifier("r50s", placement=PLACEMENT, bound=7.0, seed=0)
    rng = np.random.default_rng(0)
    images = [rng.uniform(0, 1, size=(3, 64, 64)).astype(np.float32)
              for _ in range(NUM_REQUESTS)]

    # Sequential baseline: one engine call per request.
    seq = DefconEngine(model, XAVIER, backend="tex2dpp")
    for img in images:
        seq.classify(img[None])
    seq_ms = seq.deformable_latency_ms() / NUM_REQUESTS

    rows = [["sequential (batch=1)", 1.0, round(seq_ms, 4), "1.00x"]]
    batched_ms = {}
    for max_batch in BATCH_SIZES:
        engine = DefconEngine(model, XAVIER, backend="tex2dpp")
        batcher = RequestBatcher(engine, max_batch_size=max_batch)
        batcher.serve_all(images)
        snap = batcher.metrics.snapshot()
        per_image = snap["sim_ms_per_image"]
        batched_ms[max_batch] = per_image
        rows.append([f"batched (max={max_batch})",
                     round(snap["mean_batch_size"], 2),
                     round(per_image, 4), f"{seq_ms / per_image:.2f}x"])

    text = format_table(
        ["serving mode", "mean batch", "per-image deformable ms", "speedup"],
        rows,
        title=f"Batched vs sequential serving — {NUM_REQUESTS} classify "
              "requests on jetson-agx-xavier (tex2D++)")
    write_result("serving_throughput", text)
    write_bench_json(
        "serving_throughput",
        {"sequential_ms_per_image": seq_ms,
         "batched_ms_per_image": {str(k): v for k, v in batched_ms.items()},
         "num_requests": NUM_REQUESTS},
        device=XAVIER.name, backend="tex2dpp")
    return seq_ms, batched_ms


@pytest.mark.slow
def test_serving_throughput(benchmark):
    seq_ms, batched_ms = run_once(benchmark, regenerate)
    for max_batch, per_image in batched_ms.items():
        # batching amortises the fixed launch/prologue cost: strictly lower
        assert per_image < seq_ms, (max_batch, per_image, seq_ms)
    # and deeper batches amortise at least as well as shallow ones
    assert batched_ms[8] <= batched_ms[2]
