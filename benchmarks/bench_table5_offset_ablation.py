"""Table V — ablation on offset policies (boundary / regularization / round).

Paper findings to reproduce:

* regularised training lands within noise of the hard boundary
  (35.30 vs 35.35 mask mAP);
* rounding the sampling coordinates to integers loses accuracy
  (34.37 vs 35.35) — the reason DEFCON keeps true bilinear interpolation
  and performs it in texture hardware instead of avoiding it.

Protocol note: at this scale, independent short training runs vary by
several points — more than the paper's ~1-mAP rounding effect.  The
rounding comparison is therefore *paired*: the same trained bounded model
is evaluated with exact bilinear sampling and again with its offsets
rounded to integers (`OffsetPolicy(rounded=True)` installed post-training),
per seed.  The pairing cancels the training noise and isolates precisely
the interpolation-fidelity loss the paper attributes the drop to.
Regularised-vs-boundary remains an (unpaired) training comparison with a
noise-level tolerance.
"""

import numpy as np
import pytest

from repro.deform.layers import DeformConv2d
from repro.deform.offsets import DEFAULT_BOUND, offset_regularization
from repro.models import build_classifier
from repro.nas import manual_interval_placement
from repro.pipeline import (ExperimentSettings, TrainConfig, format_table)
from repro.pipeline.train import (evaluate_classifier, train_classifier)
from repro.data import ShapesDataset
from repro.nn import SGD
from repro.pipeline.losses import classification_loss
from repro.tensor import Tensor

from common import run_once, write_bench_json, write_result

SEEDS = (0, 1)
PLACEMENT = manual_interval_placement(9, 3)


def _train(train_set, regularization: bool, seed: int):
    model = build_classifier("r50s", placement=PLACEMENT,
                             bound=DEFAULT_BOUND, seed=seed)
    if not regularization:
        train_classifier(model, train_set,
                         TrainConfig(epochs=8, batch_size=16,
                                     optimizer="sgd", lr=1e-2, seed=seed))
        return model
    from repro.data.dataset import classification_arrays

    xs, ys = classification_arrays(train_set)
    opt = SGD(model.parameters(), lr=1e-2, momentum=0.9, weight_decay=1e-4)
    rng = np.random.default_rng(seed)
    model.train()
    for _epoch in range(8):
        order = rng.permutation(len(xs))
        for start in range(0, len(xs), 16):
            idx = order[start:start + 16]
            loss = classification_loss(model(Tensor(xs[idx])), ys[idx])
            for mod in model.modules():
                if isinstance(mod, DeformConv2d) and \
                        mod.last_offsets is not None:
                    loss = loss + offset_regularization(
                        mod.last_offsets, DEFAULT_BOUND) * 0.1
            opt.zero_grad()
            loss.backward()
            opt.step()
    return model


def _set_rounding(model, rounded: bool) -> None:
    from repro.deform.offsets import OffsetPolicy

    for mod in model.modules():
        if isinstance(mod, DeformConv2d):
            mod.policy = OffsetPolicy(bound=DEFAULT_BOUND, rounded=rounded)


def regenerate():
    train_set = ShapesDataset.generate(300, size=64, seed=0,
                                       deformation=1.0, num_objects=1)
    val_set = ShapesDataset.generate(150, size=64, seed=9999,
                                     deformation=1.0, num_objects=1)
    bound_accs, round_accs, reg_accs = [], [], []
    for seed in SEEDS:
        model = _train(train_set, regularization=False, seed=seed)
        bound_accs.append(evaluate_classifier(model, val_set))
        _set_rounding(model, True)       # paired: same weights, rounded
        round_accs.append(evaluate_classifier(model, val_set))
        _set_rounding(model, False)
        reg_model = _train(train_set, regularization=True, seed=seed)
        reg_accs.append(evaluate_classifier(reg_model, val_set))
    bound, rnd, reg = (float(np.mean(v))
                       for v in (bound_accs, round_accs, reg_accs))
    table = [
        [True, False, False, round(100 * bound, 2)],
        [True, True, False, round(100 * reg, 2)],
        [True, False, True, round(100 * rnd, 2)],
    ]
    text = format_table(
        ["Boundary", "Regularization", "Round", "accuracy (%)"],
        table,
        title=f"Table V analogue — offset-policy ablation "
              f"({len(SEEDS)}-seed mean; Round = paired inference-time "
              f"rounding on the boundary-trained weights)",
    )
    per_seed = ", ".join(
        f"seed {s}: {100 * b:.1f} -> {100 * r:.1f}"
        for s, b, r in zip(SEEDS, bound_accs, round_accs))
    text += f"\npaired rounding deltas: {per_seed}"
    write_result("table5_offset_ablation", text)
    write_bench_json(
        "table5_offset_ablation",
        {"bound_accuracy_mean": bound, "regularized_accuracy_mean": reg,
         "rounded_accuracy_mean": rnd,
         "per_seed": [{"seed": s, "bound": b, "rounded": r}
                      for s, b, r in zip(SEEDS, bound_accs, round_accs)]},
        device=None, task="classification-proxy")
    return bound_accs, round_accs, reg_accs


def test_table5_offset_ablation(benchmark):
    bound_accs, round_accs, reg_accs = run_once(benchmark, regenerate)
    # paired: rounding never helps, and hurts on average (paper: −1 mAP)
    deltas = [r - b for b, r in zip(bound_accs, round_accs)]
    assert np.mean(deltas) <= 0.0
    assert all(d <= 0.02 for d in deltas)
    # regularised training lands within noise of the hard boundary
    assert abs(float(np.mean(reg_accs)) - float(np.mean(bound_accs))) < 0.12
