"""Fig. 10 — nvprof metrics of the three deformable sampling kernels.

Paper observations to reproduce:

* PyTorch issues **zero** texture load requests; tex2D/tex2D++ use them;
* the MFLOP count drops ≈4× when the texture unit interpolates;
* GLD efficiency reaches (≈)100 % for the texture kernels, far lower for
  the PyTorch gather;
* GLD transactions-per-request drop for the texture kernels.
"""

import numpy as np

from repro.gpusim import XAVIER
from repro.kernels import TABLE2_LAYERS, run_layer_all_backends
from repro.pipeline import format_table

from common import run_once, write_bench_json, write_result


def regenerate():
    rows = []
    stats = {}
    for cfg in TABLE2_LAYERS:
        res = run_layer_all_backends(cfg, XAVIER, bound=7.0,
                                     compute_output=False)
        for backend in ("pytorch", "tex2d", "tex2dpp"):
            s = res[backend].sample_kernel
            rows.append([cfg.label(), backend, round(s.mflop, 1),
                         round(s.gld_efficiency, 1),
                         round(s.gld_transactions_per_request, 2),
                         int(s.tex_cache_requests / 1e3),
                         round(s.tex_cache_hit_rate, 1)])
            stats[(cfg.label(), backend)] = s
    text = format_table(
        ["layer", "kernel", "MFLOP", "GLD eff (%)", "GLD trans/req",
         "tex requests (K)", "tex hit (%)"],
        rows,
        title="Fig. 10 analogue — nvprof metrics per sampling kernel "
              "(Xavier)",
    )
    write_result("fig10_nvprof_metrics", text)
    write_bench_json(
        "fig10_nvprof_metrics",
        {"rows": [{"layer": label, "kernel": backend,
                   "mflop": s.mflop,
                   "gld_efficiency_pct": s.gld_efficiency,
                   "gld_transactions_per_request":
                       s.gld_transactions_per_request,
                   "tex_cache_requests": s.tex_cache_requests,
                   "tex_hit_rate_pct": s.tex_cache_hit_rate}
                  for (label, backend), s in sorted(stats.items())]},
        device=XAVIER.name)
    return stats


def test_fig10_metrics(benchmark):
    stats = run_once(benchmark, regenerate)
    for cfg_label in {k[0] for k in stats}:
        ref = stats[(cfg_label, "pytorch")]
        t2 = stats[(cfg_label, "tex2d")]
        # texture requests: zero for PyTorch, positive for tex kernels
        assert ref.tex_cache_requests == 0
        assert t2.tex_cache_requests > 0
        # ~4x MFLOP reduction from hardware interpolation
        assert 3.5 < ref.flop_count_sp / t2.flop_count_sp < 5.5
        # coalescing quality flips in favour of the texture kernel
        assert t2.gld_efficiency > 99.0
        assert ref.gld_efficiency < t2.gld_efficiency
        assert (t2.gld_transactions_per_request
                < ref.gld_transactions_per_request)
