"""Fig. 8 — tile-size selection for tex2D and tex2D++.

The paper sweeps tile sizes (log-scale y axis: the spread is large) and
shows that the ytopt Bayesian-optimisation search lands on the best tile.
Here: exhaustive sweep = the oracle; the BO tuner must match it within a
half-budget, and beat the worst tile by a wide margin.
"""

import numpy as np

from repro.autotune import TileTuner
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig
from repro.pipeline import format_table

from common import run_once, write_bench_json, write_result

SWEEP_LAYERS = (LayerConfig(128, 128, 69, 69), LayerConfig(256, 256, 35, 35))


def regenerate():
    rows, summary = [], {}
    for backend in ("tex2d", "tex2dpp"):
        for cfg in SWEEP_LAYERS:
            tuner = TileTuner(XAVIER, backend=backend, budget=14, seed=0)
            grid = tuner.tune(cfg, "grid")
            bayes = tuner.tune(cfg, "bayes")
            rand = tuner.tune(cfg, "random")
            worst = max(v for _, v in grid.history)
            rows.append([
                backend, cfg.label(),
                f"{grid.best_point}", round(grid.best_value, 4),
                f"{bayes.best_point}", round(bayes.best_value, 4),
                bayes.evaluations,
                round(rand.best_value, 4),
                f"{worst / grid.best_value:.2f}x",
            ])
            summary[(backend, cfg.label())] = (grid, bayes, rand, worst)
    text = format_table(
        ["backend", "layer", "oracle tile", "oracle ms", "BO tile", "BO ms",
         "BO evals", "random ms", "worst/best"],
        rows,
        title="Fig. 8 analogue — tile-size search (Xavier); oracle = "
              "exhaustive sweep, BO = ytopt-style Bayesian optimisation",
    )
    write_result("fig8_tile_search", text)
    write_bench_json(
        "fig8_tile_search",
        {"rows": [{"backend": backend, "layer": label,
                   "oracle_ms": grid.best_value,
                   "bayes_ms": bayes.best_value,
                   "bayes_evaluations": bayes.evaluations,
                   "random_ms": rand.best_value,
                   "worst_over_best": worst / grid.best_value}
                  for (backend, label), (grid, bayes, rand, worst)
                  in sorted(summary.items())]},
        device=XAVIER.name)
    return summary


def test_fig8_tile_search(benchmark):
    summary = run_once(benchmark, regenerate)
    for (backend, label), (grid, bayes, rand, worst) in summary.items():
        # tile size matters: the worst tile is much slower than the best
        assert worst / grid.best_value > 1.5
        # the BO tuner matches the oracle closely at half the evaluations
        assert bayes.best_value <= grid.best_value * 1.05
        assert bayes.evaluations < grid.evaluations
        # and is at least as good as random search at equal budget
        assert bayes.best_value <= rand.best_value * 1.02
