"""Ablation — texture-cache capacity and the tile-size sweet spot.

DESIGN.md's cache model drives Fig. 8's tile sensitivity through two
mechanisms: halo re-fetch (small tiles) and capacity thrash (big tiles).
This ablation sweeps the per-SM texture cache size and records, at a fixed
large tile, the hit rate and kernel latency — and shows the autotuned best
tile growing with cache capacity.
"""

import numpy as np
import pytest

from repro.autotune import TileTuner
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig, run_deform_op, synth_offsets
from repro.pipeline import format_table

from common import run_once, write_bench_json, write_result

CACHE_KB = (4, 16, 32, 128)
CFG = LayerConfig(128, 128, 69, 69)
BIG_TILE = (32, 32)


def regenerate():
    g = np.random.default_rng(0)
    x = g.normal(size=CFG.input_shape()).astype(np.float32)
    w = g.normal(size=CFG.weight_shape()).astype(np.float32)
    off = synth_offsets(CFG, sigma=2.0, bound=7.0, seed=0)
    rows, data = [], []
    for kb in CACHE_KB:
        spec = XAVIER.with_overrides(tex_cache_kb_per_sm=kb)
        res = run_deform_op("tex2d", x, off, w, None, CFG, spec,
                            tile=BIG_TILE, compute_output=False)
        s = res.sample_kernel
        tuner = TileTuner(spec, budget=12, seed=0)
        best_tile = tuner.best_tile(CFG)
        rows.append([kb, round(s.tex_cache_hit_rate, 2),
                     round(s.duration_ms, 3), f"{best_tile}"])
        data.append((kb, s.tex_cache_hit_rate, s.duration_ms,
                     best_tile[0] * best_tile[1]))
    text = format_table(
        ["tex cache (KB/SM)", f"hit rate @ {BIG_TILE} (%)", "latency (ms)",
         "autotuned tile"],
        rows,
        title=f"Ablation — texture cache capacity ({CFG.label()}, Xavier "
              "variants)",
    )
    write_result("ablation_texture_cache", text)
    write_bench_json(
        "ablation_texture_cache",
        {"rows": [{"tex_cache_kb_per_sm": kb, "hit_rate_pct": h,
                   "latency_ms": t, "autotuned_tile_pixels": p}
                  for kb, h, t, p in data]},
        device=XAVIER.name, layer=CFG.label())
    return data


def test_texture_cache_ablation(benchmark):
    data = run_once(benchmark, regenerate)
    hits = [h for _, h, _, _ in data]
    times = [t for _, _, t, _ in data]
    tiles = [p for _, _, _, p in data]
    # more cache -> better hit rate at the big tile, never slower
    assert hits == sorted(hits)
    assert times[0] >= times[-1]
    # the autotuned tile footprint never shrinks as the cache grows
    assert tiles == sorted(tiles)
