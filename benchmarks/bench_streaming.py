"""Streaming serving: delta-keyed plan cache vs exact keying.

Not a paper figure — this bench guards the streaming-video subsystem
(docs/streaming.md).  A video stream produces a *new* offset digest every
frame, so the exact-keyed plan cache rebuilds its fetch trace, re-runs
the cache simulation and recompiles the fused plan per frame.  The
delta-keyed mode anchors each session once and serves in-bound frames by
retargeting the session's fused plan — outputs stay bit-identical (the
tap tables are recomputed from each frame's real offsets), only the
memoised perf simulation is reused.

Three measurements:

* **steady state** — per-frame fused serving of one stream at stride 1:
  delta keying must be ≥1.5× faster than exact keying, with every
  frame's output bit-identical between the two modes;
* **hit rate vs stride** — sampling every s-th frame grows the offset
  delta, so the delta-hit-rate must fall monotonically with stride;
* **concurrent streams** — K round-robin streams against a plan cache
  with ``max_entries`` < K: LRU pressure evicts anchors (counted), and
  the hit rate degrades as K grows past the cache capacity.

The CI ``streaming-smoke`` job runs this on every push.
"""

import time

import numpy as np

from repro.data.video import VideoStream
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig, PlanCache
from repro.kernels.tex2d import run_tex2d
from repro.pipeline import format_table

from common import run_once, write_bench_json, write_result

#: geometry bound to the stream's offset tensor: 3x3, dg=1 → 18 offset
#: channels on the 32x32 output grid
CFG = LayerConfig(32, 32, 32, 32)
OFFSET_SHAPE = (1, 18, 32, 32)
FRAMES = 12
STRIDES = (1, 2, 4, 8)
STREAM_COUNTS = (2, 4, 6)
MAX_ENTRIES = 4
#: frame-to-frame offsets move ≤0.25; the bound gives ~2.6× headroom so
#: a session re-anchors only every few frames of accumulated drift
FRAME_DELTA = 0.25
DELTA_BOUND = 0.65
ROUNDS = 2


def _stream(seed=0):
    return VideoStream(num_frames=None, seed=seed,
                       offset_shape=OFFSET_SHAPE,
                       offset_sigma=2.0, frame_delta=FRAME_DELTA)


def _inputs(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=CFG.input_shape()).astype(np.float32)
    w = (rng.normal(size=CFG.weight_shape()) / np.sqrt(CFG.in_channels * 9)
         ).astype(np.float32)
    b = rng.normal(size=(CFG.out_channels,)).astype(np.float32)
    return x, w, b


def _serve(x, w, b, offs, pc, session):
    """Fused-serve one offset sequence; per-frame seconds + outputs."""
    times, outs = [], []
    for off in offs:
        t0 = time.perf_counter()
        res = run_tex2d(x, off, w, b, CFG, XAVIER, plan_cache=pc,
                        execution="fused", session=session)
        times.append(time.perf_counter() - t0)
        outs.append(res.output)
    return times, outs


def _steady_state():
    """Stride-1 fused serving, exact keying vs delta keying."""
    x, w, b = _inputs()
    offs = [_stream().offsets(t) for t in range(FRAMES)]
    best = {"exact": float("inf"), "delta": float("inf")}
    hits = 0
    for _ in range(ROUNDS):
        # fresh caches each round: every round pays the same anchor
        # frame, and the steady state is frames 1..N-1; the per-round
        # *minimum* is the statistic (CI load only inflates samples)
        t_exact, out_exact = _serve(x, w, b, offs,
                                    PlanCache(max_entries=64), None)
        pc = PlanCache(max_entries=64, delta_bound=DELTA_BOUND)
        t_delta, out_delta = _serve(x, w, b, offs, pc, "bench")
        for t, (a, d) in enumerate(zip(out_exact, out_delta)):
            assert np.array_equal(a, d), f"delta output drifted, frame {t}"
        hits = pc.stats.delta_hits
        assert hits > 0, "delta keying never hit"
        best["exact"] = min(best["exact"], sum(t_exact[1:]))
        best["delta"] = min(best["delta"], sum(t_delta[1:]))
    exact_ms = best["exact"] * 1e3 / (FRAMES - 1)
    delta_ms = best["delta"] * 1e3 / (FRAMES - 1)
    return exact_ms, delta_ms, exact_ms / delta_ms, hits


def _hit_rate_vs_stride():
    """Delta-hit-rate sampling every s-th frame of one stream."""
    x, w, b = _inputs()
    stream = _stream()
    rates = {}
    for s in STRIDES:
        offs = [stream.offsets(t * s) for t in range(FRAMES)]
        pc = PlanCache(max_entries=64, delta_bound=DELTA_BOUND)
        _serve(x, w, b, offs, pc, f"stride-{s}")
        # each fused frame makes two delta-able lookups (fused plan +
        # memoised perf stats); the anchor frame makes none
        rates[s] = pc.stats.delta_hits / (2 * (FRAMES - 1))
    return rates


def _concurrent_streams():
    """K round-robin streams vs a cache with max_entries < max(K)."""
    x, w, b = _inputs()
    out = {}
    for k in STREAM_COUNTS:
        streams = [_stream(seed=s) for s in range(k)]
        pc = PlanCache(max_entries=MAX_ENTRIES, delta_bound=DELTA_BOUND)
        t0 = time.perf_counter()
        lookups = 0
        for t in range(FRAMES):
            for st in streams:
                run_tex2d(x, st.offsets(t), w, b, CFG, XAVIER,
                          plan_cache=pc, execution="fused",
                          session=st.session)
                lookups += 1
        elapsed = time.perf_counter() - t0
        out[k] = {
            "per_frame_ms": elapsed * 1e3 / lookups,
            # two delta-able cache lookups per fused frame
            "hit_rate": pc.stats.delta_hits / (2 * lookups),
            "evictions": pc.stats.evictions,
        }
    return out


def regenerate():
    exact_ms, delta_ms, speedup, hits = _steady_state()
    rates = _hit_rate_vs_stride()
    streams = _concurrent_streams()
    rows = [["steady state (stride 1)", f"{exact_ms:.1f}",
             f"{delta_ms:.1f}", f"{speedup:.1f}x",
             f"{hits}/{FRAMES - 1} delta hits"]]
    rows += [[f"stride {s}", "-", "-", "-",
              f"hit rate {rates[s]:.2f}"] for s in STRIDES]
    rows += [[f"{k} streams, {MAX_ENTRIES} entries", "-",
              f"{streams[k]['per_frame_ms']:.1f}", "-",
              f"hit rate {streams[k]['hit_rate']:.2f}, "
              f"{streams[k]['evictions']} evictions"]
             for k in STREAM_COUNTS]
    text = format_table(
        ["scenario", "exact ms/frame", "delta ms/frame", "speedup",
         "cache behaviour"],
        rows,
        title=f"Streaming serving — {CFG.label()} on {XAVIER.name}; "
              f"delta-keyed plan cache (bound {DELTA_BOUND}) vs exact "
              "keying, outputs bit-identical")
    write_result("streaming", text)
    write_bench_json(
        "streaming",
        {"layer": CFG.label(),
         "frames": FRAMES,
         "delta_bound": DELTA_BOUND,
         "steady_state": {"exact_ms": exact_ms, "delta_ms": delta_ms,
                          "speedup": speedup, "delta_hits": hits},
         "stride_hit_rate": {str(s): rates[s] for s in STRIDES},
         "concurrent_streams": {str(k): streams[k]
                                for k in STREAM_COUNTS}},
        device=XAVIER.name)
    return speedup, rates, streams


def test_streaming_serving(benchmark):
    speedup, rates, streams = run_once(benchmark, regenerate)
    assert speedup >= 1.5, \
        f"delta-keyed steady-state speedup {speedup:.2f}x < 1.5x"
    ordered = [rates[s] for s in STRIDES]
    assert all(a >= b for a, b in zip(ordered, ordered[1:])), \
        f"hit rate not monotone in stride: {rates}"
    assert ordered[0] > ordered[-1], \
        f"hit rate flat across strides: {rates}"
    assert ordered[0] >= 0.6, \
        f"stride-1 hit rate {ordered[0]:.2f} too low for streaming reuse"
    # LRU pressure: more streams than entries must evict and degrade
    assert streams[STREAM_COUNTS[-1]]["evictions"] > 0
    assert streams[STREAM_COUNTS[0]]["hit_rate"] >= \
        streams[STREAM_COUNTS[-1]]["hit_rate"]
