"""Hot-path speedups from the plan cache and one-pass re-tiled simulation.

Not a paper figure — this bench guards the wall-time wins documented in
docs/performance.md:

* **steady state**: repeated ``run_tex2d`` calls with identical offsets /
  geometry / tile (the serving loop) through a
  :class:`~repro.kernels.plancache.PlanCache` must be ≥2× faster than the
  uncached path, with bit-identical kernel stats;
* **tuner sweep**: an exhaustive tile search on the re-tiled fast path
  (one trace + K cheap regroupings, fanned over a process pool) must be
  ≥3× faster than the legacy per-candidate full simulation, and land on
  the same best tile;
* **fused serving**: the full functional forward (``compute_output=True``)
  through a compiled :class:`~repro.kernels.fused.FusedPlan` must be ≥2×
  faster than eager execution *with the plan cache already warm*, with
  bit-identical outputs and kernel stats.

The CI ``perf-smoke`` job runs this on every push and fails if the cached
paths stop being faster.
"""

import time

import numpy as np

from repro.autotune import TileTuner
from repro.gpusim import XAVIER
from repro.kernels import LayerConfig, PlanCache, synth_offsets
from repro.kernels.tex2d import run_tex2d
from repro.pipeline import format_table

from common import run_once, write_bench_json, write_result

LAYER = LayerConfig(128, 128, 69, 69)     # a paper Table II geometry
#: the sweep tunes a small model's worth of distinct layer geometries, so
#: the persistent worker pool's spawn cost is amortised as in real use
SWEEP_LAYERS = (LayerConfig(128, 128, 69, 69),
                LayerConfig(256, 256, 35, 35),
                LayerConfig(64, 64, 138, 138))
STEADY_ITERS = 10
#: fused-vs-eager runs the full functional forward (~hundreds of ms per
#: eager call at this geometry), so few best-of samples suffice
FUSED_ITERS = 3


def _steady_state(cfg):
    """Repeated identical run_tex2d calls, uncached vs plan-cached."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=cfg.input_shape()).astype(np.float32)
    w = rng.normal(size=cfg.weight_shape()).astype(np.float32)
    off = synth_offsets(cfg, seed=0)

    def loop(plan_cache):
        stats = None
        t0 = time.perf_counter()
        for _ in range(STEADY_ITERS):
            res = run_tex2d(x, off, w, None, cfg, XAVIER,
                            compute_output=False, plan_cache=plan_cache)
            stats = res.sample_kernel
        return time.perf_counter() - t0, stats

    uncached_s, uncached_stats = loop(None)
    cache = PlanCache()
    cached_s, cached_stats = loop(cache)
    assert cached_stats == uncached_stats, "plan cache drifted from simulate"
    assert cache.stats.hits == STEADY_ITERS - 1
    return uncached_s, cached_s


def _fused_serving(cfg):
    """Steady-state *functional* serving: eager vs fused, shared warm
    plan cache, outputs and stats bit-identical by assertion."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=cfg.input_shape()).astype(np.float32)
    w = rng.normal(size=cfg.weight_shape()).astype(np.float32)
    b = rng.normal(size=(cfg.out_channels,)).astype(np.float32)
    off = synth_offsets(cfg, seed=0)
    cache = PlanCache()

    def loop(execution):
        # warm-up call compiles the plan / warms the trace entry, so the
        # timed iterations measure the steady state of both modes; the
        # per-call *minimum* is the statistic — load spikes on a shared
        # CI box only ever inflate a sample, never deflate it
        res = run_tex2d(x, off, w, b, cfg, XAVIER, plan_cache=cache,
                        execution=execution)
        best = float("inf")
        for _ in range(FUSED_ITERS):
            t0 = time.perf_counter()
            res = run_tex2d(x, off, w, b, cfg, XAVIER, plan_cache=cache,
                            execution=execution)
            best = min(best, time.perf_counter() - t0)
        return best, res

    eager_s, eager = loop("eager")
    fused_s, fused = loop("fused")
    assert np.array_equal(fused.output, eager.output), \
        "fused output drifted from eager"
    assert [k.__dict__ for k in fused.kernels] == \
        [k.__dict__ for k in eager.kernels], \
        "fused kernel stats drifted from eager"
    assert cache.stats.fused_builds == 1
    return eager_s, fused_s


def _tuner_sweep(layers):
    """Exhaustive tile search over a model's layer geometries: legacy
    full-sim grid vs the re-tiled sweep (serial, and fanned over a
    2-worker persistent process pool)."""
    def timed(make_tuner, method):
        tuner = make_tuner()
        t0 = time.perf_counter()
        results = [tuner.tune(cfg, method) for cfg in layers]
        elapsed = time.perf_counter() - t0
        tuner.close()
        return elapsed, results

    legacy_s, legacy = timed(
        lambda: TileTuner(XAVIER, seed=0, plan_cache=False), "grid")
    serial_s, serial = timed(lambda: TileTuner(XAVIER, seed=0), "sweep")
    fast_s, fast = timed(lambda: TileTuner(XAVIER, seed=0, workers=2),
                         "sweep")
    tiles = 0
    for ref, ser, par in zip(legacy, serial, fast):
        assert par.best_point == ref.best_point, "fast sweep changed winner"
        assert dict(par.history) == dict(ref.history) == \
            dict(ser.history), "re-tiled sweep drifted from full simulation"
        tiles += len(ref.history)
    return legacy_s, serial_s, fast_s, tiles


def regenerate():
    uncached_s, cached_s = _steady_state(LAYER)
    eager_s, fused_s = _fused_serving(LAYER)
    legacy_s, serial_s, fast_s, tiles = _tuner_sweep(SWEEP_LAYERS)
    steady_x = uncached_s / cached_s
    fused_x = eager_s / fused_s
    serial_x = legacy_s / serial_s
    sweep_x = legacy_s / fast_s
    rows = [
        ["steady-state run_tex2d × %d" % STEADY_ITERS,
         f"{uncached_s * 1e3:.1f}", f"{cached_s * 1e3:.1f}",
         f"{steady_x:.1f}x"],
        ["fused serving forward (best of %d)" % FUSED_ITERS,
         f"{eager_s * 1e3:.1f}", f"{fused_s * 1e3:.1f}",
         f"{fused_x:.1f}x"],
        ["%d-layer tile sweep, serial (%d tiles)" % (len(SWEEP_LAYERS),
                                                     tiles),
         f"{legacy_s * 1e3:.1f}", f"{serial_s * 1e3:.1f}",
         f"{serial_x:.1f}x"],
        ["%d-layer tile sweep, 2 workers (%d tiles)" % (len(SWEEP_LAYERS),
                                                        tiles),
         f"{legacy_s * 1e3:.1f}", f"{fast_s * 1e3:.1f}",
         f"{sweep_x:.1f}x"],
    ]
    text = format_table(
        ["hot path", "baseline ms", "optimised ms", "speedup"],
        rows,
        title=f"Perf-model hot paths — {LAYER.label()} on {XAVIER.name}; "
              "plan cache + fused execution + one-pass re-tiling + "
              "process-parallel sweep (outputs & stats bit-identical)")
    write_result("perf_model", text)
    write_bench_json(
        "perf_model",
        {"layer": LAYER.label(),
         "sweep_layers": [cfg.label() for cfg in SWEEP_LAYERS],
         "steady_state": {"iters": STEADY_ITERS,
                          "uncached_ms": uncached_s * 1e3,
                          "cached_ms": cached_s * 1e3,
                          "speedup": steady_x},
         "fused_serving": {"iters": FUSED_ITERS,
                           "eager_ms": eager_s * 1e3,
                           "fused_ms": fused_s * 1e3,
                           "speedup": fused_x},
         "tuner_sweep": {"tiles": tiles,
                         "legacy_ms": legacy_s * 1e3,
                         "serial_ms": serial_s * 1e3,
                         "serial_speedup": serial_x,
                         "fast_ms": fast_s * 1e3,
                         "speedup": sweep_x}},
        device=XAVIER.name)
    return steady_x, fused_x, serial_x, sweep_x


def test_perf_model_hot_paths(benchmark):
    steady_x, fused_x, serial_x, sweep_x = run_once(benchmark, regenerate)
    assert steady_x >= 2.0, f"plan cache speedup {steady_x:.2f}x < 2x"
    assert fused_x >= 2.0, f"fused serving speedup {fused_x:.2f}x < 2x"
    # the re-tiled sweep must clear 3x both serially and with the pool
    # (at this geometry the pool's spawn cost eats part of the win)
    assert serial_x >= 3.0, f"re-tiled sweep speedup {serial_x:.2f}x < 3x"
    assert sweep_x >= 3.0, f"parallel sweep speedup {sweep_x:.2f}x < 3x"
