"""Table II — layer-wise deformable-op latency on the Xavier.

Regenerates the six-row table: per-shape latency of the PyTorch baseline,
tex2D and tex2D++ deformable kernels, plus the speedup w.r.t. PyTorch.
The paper's per-row speedups are 1.33–1.41×; the simulator's calibrated
bands are asserted in tests/test_kernels.py.
"""

import numpy as np
import pytest

from repro.gpusim import XAVIER
from repro.kernels import TABLE2_LAYERS, run_layer_all_backends
from repro.pipeline import format_table

from common import run_once, write_bench_json, write_result


def regenerate(spec=XAVIER, name="table2_xavier_layers"):
    rows = []
    for cfg in TABLE2_LAYERS:
        res = run_layer_all_backends(cfg, spec, bound=7.0,
                                     compute_output=False)
        bl = res["pytorch"].sample_kernel.duration_ms
        t2 = res["tex2d"].sample_kernel.duration_ms
        tp = res["tex2dpp"].sample_kernel.duration_ms
        rows.append([cfg.in_channels, cfg.out_channels, cfg.height,
                     cfg.width, round(bl, 3), round(t2, 3), round(tp, 3),
                     f"{bl / tp:.2f}x"])
    text = format_table(
        ["In ch", "Out ch", "H", "W", "PyTorch (ms)", "tex2D (ms)",
         "tex2D++ (ms)", "Speedup w.r. Torch"],
        rows,
        title=f"Table II analogue — deformable operation latency on "
              f"{spec.name}",
    )
    write_result(name, text)
    write_bench_json(
        name,
        {"rows": [{"layer": f"{cin}x{cout}x{h}x{w}",
                   "pytorch_ms": bl, "tex2d_ms": t2, "tex2dpp_ms": tp,
                   "speedup": float(sp[:-1])}
                  for cin, cout, h, w, bl, t2, tp, sp in rows]},
        device=spec.name)
    return rows


def test_table2_xavier(benchmark):
    rows = run_once(benchmark, regenerate)
    speedups = np.array([float(r[-1][:-1]) for r in rows])
    assert (speedups > 1.0).all()
    assert 1.2 < speedups.mean() < 1.6
