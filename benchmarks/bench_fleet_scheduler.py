"""Fleet scheduler — cost-model routing vs baselines, plus fault tolerance.

Not a paper figure: the serving-tier consequence of the paper's
per-device latency model.  The same gpusim cost path that feeds the NAS
latency table (Eq. 6) prices every worker's expected completion time, so
the router can exploit a heterogeneous fleet (Xavier + 2080Ti) instead
of spreading load uniformly.  Two claims are gated here:

* **routing** — cost-model routing finishes the same request stream in
  strictly less simulated time (higher throughput) than round-robin and
  random placement on a heterogeneous fleet;
* **fault tolerance** — with a crash fault injected on one worker, the
  fleet still completes every request via breaker + retry-with-rerouting
  and **zero futures are lost** (every one resolves).

Both runs are deterministic simulations (fixed seed, simulated clock).
"""

import numpy as np
import pytest

from repro.fleet import build_fleet
from repro.models import build_classifier
from repro.nas import manual_interval_placement

from common import run_once, write_bench_json, write_result

NUM_REQUESTS = 12
INPUT_SIZE = 32
DEVICES = ("xavier", "2080ti")
POLICIES = ("cost", "round-robin", "random")
FAULT = "w1-rtx-2080ti=crash:0-0.3"


def _images():
    rng = np.random.default_rng(0)
    return [rng.uniform(0, 1, size=(3, INPUT_SIZE, INPUT_SIZE)
                        ).astype(np.float32) for _ in range(NUM_REQUESTS)]


def _run(model, router, faults=(), **kw):
    sched = build_fleet(model, DEVICES, router=router, faults=list(faults),
                        max_batch_size=2, seed=0, **kw)
    futures = [sched.submit(img) for img in _images()]
    sched.drain()
    snap = sched.snapshot()
    snap["unresolved"] = len(sched.unresolved())
    snap["futures_failed"] = sum(1 for f in futures
                                 if f.exception() is not None)
    snap["throughput_rps"] = (snap["completed"] / snap["makespan_ms"] * 1e3
                              if snap["makespan_ms"] > 0 else 0.0)
    return snap


def regenerate():
    model = build_classifier("r50s", input_size=INPUT_SIZE,
                             placement=manual_interval_placement(9, 3),
                             bound=7.0, seed=0)

    routing = {policy: _run(model, policy) for policy in POLICIES}
    fault = _run(model, "cost", faults=[FAULT], breaker_threshold=1)

    rows = []
    for policy, snap in routing.items():
        shares = snap["completed_by_worker"]
        rows.append([policy, round(snap["makespan_ms"], 3),
                     round(snap["throughput_rps"], 1),
                     shares.get("w0-jetson-agx-xavier", 0),
                     shares.get("w1-rtx-2080ti", 0), "-", "-"])
    rows.append([f"cost + {FAULT}", round(fault["makespan_ms"], 3),
                 round(fault["throughput_rps"], 1),
                 fault["completed_by_worker"].get("w0-jetson-agx-xavier", 0),
                 fault["completed_by_worker"].get("w1-rtx-2080ti", 0),
                 fault["retries"], fault["unresolved"]])

    from repro.pipeline import format_table
    text = format_table(
        ["router", "makespan (sim ms)", "req/s (sim)", "xavier", "2080ti",
         "retries", "unresolved"], rows,
        title=f"Fleet scheduler — {NUM_REQUESTS} classify requests across "
              f"{'+'.join(DEVICES)} (tex2D++)")
    write_result("fleet_scheduler", text)
    write_bench_json(
        "fleet_scheduler",
        {"routing": routing, "fault": fault, "num_requests": NUM_REQUESTS,
         "fault_spec": FAULT},
        device="jetson-agx-xavier+rtx-2080ti", backend="tex2dpp")
    return routing, fault


@pytest.mark.fleet
@pytest.mark.slow
def test_fleet_scheduler_bench(benchmark):
    routing, fault = run_once(benchmark, regenerate)

    # every policy must finish the stream with nothing lost
    for policy, snap in routing.items():
        assert snap["completed"] == NUM_REQUESTS, (policy, snap)
        assert snap["unresolved"] == 0, (policy, snap)

    # cost-model routing strictly beats both baselines on a heterogeneous
    # fleet: lower makespan == higher throughput for the same stream
    cost = routing["cost"]["makespan_ms"]
    assert cost < routing["round-robin"]["makespan_ms"], routing
    assert cost < routing["random"]["makespan_ms"], routing

    # fault run: one worker crash-faulted, yet all requests complete via
    # rerouting/degradation and zero futures are lost
    assert fault["completed"] == NUM_REQUESTS, fault
    assert fault["unresolved"] == 0 and fault["futures_failed"] == 0, fault
    assert fault["retries"] > 0, fault
    assert any(w["breaker_transitions"] > 0 for w in fault["workers"]), fault
