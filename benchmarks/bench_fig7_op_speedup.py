"""Fig. 7 — deformable operation speedup bars (tex2D / tex2D++ over PyTorch).

The paper reports average accelerations of 1.27× (tex2D) and 1.39×
(tex2D++) on the Xavier, with tex2D++ ahead thanks to the halved offset
bandwidth.
"""

import numpy as np

from repro.gpusim import XAVIER
from repro.kernels import TABLE2_LAYERS, run_layer_all_backends
from repro.pipeline import format_speedup_bars

from common import run_once, write_bench_json, write_result


def regenerate():
    labels, s2d, s2dpp = [], [], []
    for cfg in TABLE2_LAYERS:
        res = run_layer_all_backends(cfg, XAVIER, bound=7.0,
                                     compute_output=False)
        bl = res["pytorch"].sample_kernel.duration_ms
        labels.append(cfg.label())
        s2d.append(bl / res["tex2d"].sample_kernel.duration_ms)
        s2dpp.append(bl / res["tex2dpp"].sample_kernel.duration_ms)
    text = "\n\n".join([
        format_speedup_bars(labels, s2d,
                            title="Fig. 7 analogue — tex2D speedup over "
                                  "PyTorch (Xavier)"),
        format_speedup_bars(labels, s2dpp, title="tex2D++ speedup"),
        f"mean: tex2D {np.mean(s2d):.2f}x (paper 1.27x), "
        f"tex2D++ {np.mean(s2dpp):.2f}x (paper 1.39x)",
    ])
    write_result("fig7_op_speedup", text)
    write_bench_json(
        "fig7_op_speedup",
        {"layers": labels, "tex2d_speedup": s2d, "tex2dpp_speedup": s2dpp,
         "tex2d_mean_speedup": float(np.mean(s2d)),
         "tex2dpp_mean_speedup": float(np.mean(s2dpp))},
        device="jetson-agx-xavier")
    return np.array(s2d), np.array(s2dpp)


def test_fig7_speedup_bars(benchmark):
    s2d, s2dpp = run_once(benchmark, regenerate)
    assert (s2dpp >= s2d - 1e-9).all()
    assert s2dpp.mean() > s2d.mean() - 1e-9
    assert 1.15 < s2d.mean() < 1.55
    assert 1.2 < s2dpp.mean() < 1.6
