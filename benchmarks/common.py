"""Shared benchmark utilities.

Every bench regenerates one table or figure of the paper and:

* prints the paper-style table/bars to stdout (visible with ``pytest -s``),
* writes it to ``results/<name>.txt`` so EXPERIMENTS.md can reference the
  exact output of the last run.

Heavy experiments (anything that trains a model) run once via
``benchmark.pedantic(..., rounds=1)`` — the timing numbers then reflect one
full regeneration of the experiment.
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_result(name: str, text: str) -> None:
    """Print and persist a bench's output table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]", file=sys.stderr)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
