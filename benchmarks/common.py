"""Shared benchmark utilities.

Every bench regenerates one table or figure of the paper and:

* prints the paper-style table/bars to stdout (visible with ``pytest -s``),
* writes it to ``results/<name>.txt`` so EXPERIMENTS.md can reference the
  exact output of the last run,
* writes a machine-readable ``results/BENCH_<name>.json`` (metrics +
  device + git revision) via :func:`write_bench_json`, so the perf
  trajectory across PRs can be tracked by tooling instead of by eyeballing
  tables.

Heavy experiments (anything that trains a model) run once via
``benchmark.pedantic(..., rounds=1)`` — the timing numbers then reflect one
full regeneration of the experiment.
"""

from __future__ import annotations

import datetime
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: bump when the BENCH_*.json envelope changes shape
BENCH_SCHEMA_VERSION = 1

#: monotonic origin for the default ``duration_s`` stamp — "how long has
#: this bench process been running when it wrote its JSON"
_PROCESS_T0 = time.monotonic()


def write_result(name: str, text: str) -> None:
    """Print and persist a bench's output table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]", file=sys.stderr)


def _git_rev() -> Optional[str]:
    # FileNotFoundError (no git binary on the box) is an OSError: a bench
    # must still produce its JSON on machines without git installed.
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent, capture_output=True,
            text=True, timeout=10)
        return out.stdout.strip() or None if out.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        return None


def write_bench_json(name: str, metrics: dict,
                     device: Optional[str] = None,
                     duration_s: Optional[float] = None, **extra) -> Path:
    """Persist one bench's numbers as ``results/BENCH_<name>.json``.

    ``metrics`` must be JSON-serialisable (floats/ints/lists/dicts); numpy
    scalars are coerced.  ``device`` is the simulated GPU preset name the
    numbers were measured on; ``extra`` keys land next to it in the
    envelope (e.g. ``backend=...``).

    Every payload is stamped with ``timestamp`` (UTC ISO-8601, wall
    clock) and ``duration_s`` — the wall-clock run duration; pass it
    explicitly for a per-bench number, otherwise the time since this
    module was imported (≈ bench-process lifetime) is recorded.  The
    flight recorder (:mod:`repro.obs.flightrec`) reads the timestamp into
    its verdict metadata; neither stamp is a compared metric.
    """

    def _coerce(value):
        if isinstance(value, dict):
            return {str(k): _coerce(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [_coerce(v) for v in value]
        if hasattr(value, "item"):        # numpy scalar
            return value.item()
        return value

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "device": device,
        "git_rev": _git_rev(),
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "duration_s": round(float(duration_s) if duration_s is not None
                            else time.monotonic() - _PROCESS_T0, 3),
        "metrics": _coerce(metrics),
    }
    payload.update({str(k): _coerce(v) for k, v in extra.items()})
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"[bench json saved to {path}]", file=sys.stderr)
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
