"""Fig. 5 — determining the P value for bounded deformation.

The paper sweeps the deformation bound P ∈ {3, 5, 7, 9, ∞} and observes
that accuracy saturates at P = 7: larger bounds give negligible gains (a
stack of layers can always enlarge the receptive field), and bounding
preserves spatial locality for the hardware.

Uses the single-object classification proxy: same deformation signal,
minutes instead of tens of minutes.
"""

import numpy as np
import pytest

from repro.data import ShapesDataset
from repro.models import build_classifier
from repro.pipeline import (TrainConfig, evaluate_classifier, format_table,
                            train_classifier)

from common import run_once, write_bench_json, write_result

BOUNDS = (3.0, 5.0, 7.0, 9.0, None)   # None = unbounded (paper's ∞)


def regenerate():
    train = ShapesDataset.generate(300, size=64, seed=0, deformation=1.0,
                                   num_objects=1)
    val = ShapesDataset.generate(150, size=64, seed=999, deformation=1.0,
                                 num_objects=1)
    cfg = TrainConfig(epochs=8, batch_size=16, optimizer="sgd", lr=1e-2, seed=0)
    accs = {}
    for bound in BOUNDS:
        model = build_classifier("r50s", placement=[True] * 9, bound=bound,
                                 seed=0)
        train_classifier(model, train, cfg)
        accs[bound] = evaluate_classifier(model, val)
    rows = [[("inf" if b is None else int(b)), round(100 * a, 2)]
            for b, a in accs.items()]
    text = format_table(
        ["P (bound)", "accuracy (%)"],
        rows,
        title="Fig. 5 analogue — accuracy vs deformation bound P "
              "(classification proxy; paper picks P = 7)",
    )
    write_result("fig5_boundary_sweep", text)
    write_bench_json(
        "fig5_boundary_sweep",
        {"accuracy_by_bound": {("inf" if b is None else str(b)): a
                               for b, a in accs.items()}},
        device=None, task="classification-proxy")
    return accs


def test_fig5_boundary_sweep(benchmark):
    accs = run_once(benchmark, regenerate)
    # P = 7 is within noise of the unbounded model (paper: negligible
    # gains beyond 7)
    assert accs[7.0] >= accs[None] - 0.08
    # and of the wider bound
    assert accs[7.0] >= accs[9.0] - 0.08
    # the tightest bound must not be the best choice by a clear margin —
    # heavy clamping discards useful deformation
    assert max(accs.values()) >= accs[3.0]
