"""Fig. 9 — speedup of each algorithmic optimisation per layer shape.

Per candidate-site shape: the interval-search baseline's deformable layer
(regular offset head + PyTorch op) against the bounded, lightweight and
texture variants, as in the paper's grouped bars (log-scale y).

Also checks the paper's negative finding: bounding the offsets does *not*
speed up the GPU (unlike the FPGA accelerators of [28], [29]) — the gather
cost is governed by the cache/coalescing behaviour, which the offsets'
magnitude barely moves once they are spatially smooth.
"""

import numpy as np

from repro.gpusim import XAVIER
from repro.pipeline import (candidate_site_configs, deform_op_ms,
                            format_table, offset_head_ms)

from common import run_once, write_bench_json, write_result

#: one representative site per Table II shape family
SITES = [candidate_site_configs("r101s")[i] for i in (0, 1, 3, 4, 11, 12)]


def layer_ms(site, backend, lightweight, bound):
    return (offset_head_ms(site, XAVIER, lightweight)
            + deform_op_ms(site, XAVIER, backend, bound))


def regenerate():
    rows = []
    data = {}
    for site in SITES:
        base = layer_ms(site, "pytorch", False, None)
        variants = {
            "interval search (B.L.)": base,
            "+bounded": layer_ms(site, "pytorch", False, 7.0),
            "+light": layer_ms(site, "pytorch", True, None),
            "+tex2d": layer_ms(site, "tex2d", False, None),
            "+tex2dpp": layer_ms(site, "tex2dpp", False, None),
            "+light+bounded+tex2dpp": layer_ms(site, "tex2dpp", True, 7.0),
        }
        data[site.label()] = variants
        rows.append([site.label()] + [
            f"{base / v:.2f}x" for v in variants.values()])
    text = format_table(
        ["layer"] + list(next(iter(data.values())).keys()),
        rows,
        title="Fig. 9 analogue — per-layer speedup of each optimisation "
              "over the interval-search baseline (Xavier)",
    )
    write_result("fig9_algo_speedup", text)
    write_bench_json(
        "fig9_algo_speedup",
        {"latency_ms_by_layer": data},
        device=XAVIER.name)
    return data


def test_fig9_algo_speedups(benchmark):
    data = run_once(benchmark, regenerate)
    for label, v in data.items():
        base = v["interval search (B.L.)"]
        # bounded offsets bring no GPU speedup (paper §IV-D)
        assert abs(base / v["+bounded"] - 1.0) < 0.1
        # lightweight head is the big win at paper scale
        assert base / v["+light"] > 1.4
        # texture kernels beat the baseline
        assert base / v["+tex2dpp"] > 1.02
        # the full stack is the fastest configuration
        assert v["+light+bounded+tex2dpp"] == min(v.values())
