"""Ablation — offset irregularity drives the texture win.

The paper's core performance mechanism: learned offsets make the input
gathers irregular, wrecking coalescing for the software kernel while the
texture path rides its 2-D-local cache.  This ablation sweeps the *spatial
correlation length* of the synthetic offsets from i.i.d. noise (worst
case) to smooth fields (trained-offset-like) and records, per setting:

* the PyTorch kernel's GLD efficiency (coalescing quality),
* the tex2D++ speedup over PyTorch.

Expected shape: GLD efficiency rises with smoothness; the texture speedup
is largest for irregular offsets and shrinks (but stays >1) as the
baseline's accesses become coalesced.
"""

import numpy as np
import pytest

from repro.gpusim import XAVIER
from repro.kernels import LayerConfig, run_deform_op, synth_offsets
from repro.pipeline import format_table

from common import run_once, write_bench_json, write_result

CORRELATIONS = (0.0, 1.0, 2.0, 4.0, 8.0)
CFG = LayerConfig(128, 128, 69, 69)


def regenerate():
    g = np.random.default_rng(0)
    x = g.normal(size=CFG.input_shape()).astype(np.float32)
    w = g.normal(size=CFG.weight_shape()).astype(np.float32)
    rows, data = [], []
    for corr in CORRELATIONS:
        off = synth_offsets(CFG, sigma=2.0, bound=7.0, seed=0,
                            correlation=corr)
        ref = run_deform_op("pytorch", x, off, w, None, CFG, XAVIER,
                            compute_output=False)
        tex = run_deform_op("tex2dpp", x, off, w, None, CFG, XAVIER,
                            compute_output=False)
        eff = ref.sample_kernel.gld_efficiency
        speedup = (ref.sample_kernel.duration_ms
                   / tex.sample_kernel.duration_ms)
        rows.append([("iid" if corr == 0 else f"{corr:.0f} px"),
                     round(eff, 1), round(speedup, 2)])
        data.append((corr, eff, speedup))
    text = format_table(
        ["offset correlation", "PyTorch GLD eff (%)", "tex2D++ speedup"],
        rows,
        title="Ablation — offset spatial smoothness vs coalescing and "
              f"texture speedup ({CFG.label()}, Xavier)",
    )
    write_result("ablation_offset_irregularity", text)
    write_bench_json(
        "ablation_offset_irregularity",
        {"rows": [{"correlation_px": c, "pytorch_gld_efficiency_pct": e,
                   "tex2dpp_speedup": s} for c, e, s in data]},
        device=XAVIER.name, layer=CFG.label())
    return data


def test_offset_irregularity_ablation(benchmark):
    data = run_once(benchmark, regenerate)
    effs = [e for _, e, _ in data]
    speedups = [s for _, _, s in data]
    # coalescing quality improves monotonically with smoothness
    assert effs == sorted(effs)
    assert effs[0] < 30.0          # iid offsets are badly uncoalesced
    assert effs[-1] > 1.5 * effs[0]
    # the texture path wins everywhere, and wins most on irregular offsets
    assert all(s > 1.0 for s in speedups)
    assert speedups[0] == max(speedups)
