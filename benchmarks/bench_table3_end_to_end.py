"""Table III — end-to-end accuracy and speedup over YOLACT++ on the Xavier.

Two halves, as in the paper:

* **speedup column** — the paper-scale latency model over the r101s
  geometry: baseline = manual interval-3 placement with regular offset
  heads on the PyTorch path; rows add interval search (fewer DCNs),
  texture kernels, bounded offsets, and the lightweight head.  Paper
  trajectory: 1.00 → 1.25 → 1.44 → 1.45 → 2.79 → 2.80×.
* **accuracy columns** — the corresponding configurations trained on the
  deformed-shapes task (scaled model), reproducing the orderings: search ≥
  manual with fewer DCNs; boundary ≈ no-boundary; light slightly below
  non-light but above the baseline.

Set REPRO_FAST=1 to skip the training half (latency only).
"""

import os

import numpy as np
import pytest

from repro.gpusim import XAVIER
from repro.nas import manual_interval_placement
from repro.pipeline import (AccuracyExperiment, DefconConfig,
                            ExperimentSettings, TrainConfig, format_table,
                            network_latency_ms, paper_scale_geometry)
from repro.nas.search import SearchConfig

from common import run_once, write_bench_json, write_result

FAST = bool(int(os.environ.get("REPRO_FAST", "0")))


def speedup_rows(searched_placement=None):
    geo = paper_scale_geometry("r101s")
    manual = manual_interval_placement(geo.num_sites, 3)
    if searched_placement is None:
        # default searched placement: one fewer DCN than manual (the paper
        # reduces 10 → 8 at full scale; at 14 sites that is 5 → 4)
        searched_placement = list(manual)
        on = [i for i, v in enumerate(searched_placement) if v]
        searched_placement[on[1]] = False
    baseline = network_latency_ms(geo, manual, XAVIER).total_ms
    configs = [
        ("YOLACT++ (manual, B.L.)", manual,
         dict(backend="pytorch", lightweight=False, bound=None)),
        ("search", searched_placement,
         dict(backend="pytorch", lightweight=False, bound=None)),
        ("search+tex2d", searched_placement,
         dict(backend="tex2d", lightweight=False, bound=None)),
        ("search+boundary+tex2d", searched_placement,
         dict(backend="tex2d", lightweight=False, bound=7.0)),
        ("search+light+tex2d", searched_placement,
         dict(backend="tex2d", lightweight=True, bound=None)),
        ("search+boundary+light+tex2dpp", searched_placement,
         dict(backend="tex2dpp", lightweight=True, bound=7.0)),
    ]
    rows = []
    for label, placement, kw in configs:
        t = network_latency_ms(geo, placement, XAVIER, **kw).total_ms
        rows.append((label, sum(placement), t, baseline / t))
    return rows


def accuracy_rows():
    settings = ExperimentSettings(
        arch="r50s", train_samples=300, val_samples=150, deformation=1.0,
        train=TrainConfig(epochs=8, batch_size=16, optimizer="sgd", lr=1e-2),
        search=SearchConfig(search_epochs=3, finetune_epochs=2, beta=0.05),
    )
    exp = AccuracyExperiment(settings)
    manual = exp.manual_placement(3)
    latencies = exp.site_latencies_ms()
    budget = sum(t for t, u in zip(latencies, manual) if u)
    search = exp.run_search(DefconConfig(search=True, boundary=True),
                            target_latency_ms=budget)
    rows = [exp.run_fixed("YOLACT++ (manual)", manual,
                          DefconConfig(boundary=True))]
    for cfg in (DefconConfig(search=True),
                DefconConfig(search=True, boundary=True),
                DefconConfig(search=True, boundary=True, lightweight=True)):
        rows.append(exp.run_fixed(f"ours ({cfg.label()})", search.placement,
                                  config=cfg))
    return rows


def regenerate():
    srows = speedup_rows()
    table = [[label, n, round(t, 1), f"{sp:.2f}x"]
             for label, n, t, sp in srows]
    text = format_table(
        ["method", "# DCNs", "latency (ms)", "speedup over YOLACT++"],
        table,
        title="Table III analogue (latency half) — end-to-end on Xavier, "
              "paper trajectory 1.00/1.25/1.44/1.45/2.79/2.80x",
    )
    acc = None
    if not FAST:
        acc = accuracy_rows()
        acc_table = [[r.method, r.num_dcn, round(100 * r.accuracy, 2)]
                     for r in acc]
        text += "\n\n" + format_table(
            ["method", "# DCNs", "accuracy (%)"],
            acc_table,
            title="Table III analogue (accuracy half) — deformed-shapes "
                  "classification protocol, scaled r50s models",
        )
    write_result("table3_end_to_end", text)
    metrics = {"latency_rows": [
        {"method": label, "num_dcn": int(n), "latency_ms": t, "speedup": sp}
        for label, n, t, sp in srows]}
    if acc is not None:
        metrics["accuracy_rows"] = [
            {"method": r.method, "num_dcn": r.num_dcn,
             "accuracy": r.accuracy} for r in acc]
    write_bench_json("table3_end_to_end", metrics,
                     device=XAVIER.name, arch="r101s")
    return srows, acc


def test_table3_end_to_end(benchmark):
    srows, acc = run_once(benchmark, regenerate)
    speedups = [sp for _, _, _, sp in srows]
    # ordering: every optimisation row at least as fast as the previous
    # conceptual stage, full stack the fastest
    assert speedups[0] == pytest.approx(1.0)
    assert 1.1 < speedups[1] < 1.35          # search alone (paper 1.25)
    assert speedups[2] > speedups[1]         # +tex2d
    assert speedups[5] == max(speedups)      # full stack wins
    assert 2.2 < speedups[5] < 3.3           # paper 2.80
    # fewer DCNs after search
    assert srows[1][1] < srows[0][1]
    if acc is not None:
        by_name = {r.method: r for r in acc}
        ours = [r for name, r in by_name.items() if name.startswith("ours")]
        manual = by_name["YOLACT++ (manual)"]
        # the searched placements hold accuracy against manual placement
        assert max(r.accuracy for r in ours) >= manual.accuracy - 0.08
