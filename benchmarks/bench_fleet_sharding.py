"""Fleet sharding — the shard-aware cost router vs both fixed policies.

Not a paper figure: intra-request parallelism layered on the fleet
scheduler.  The shard planner prices row-band / channel-group splits of
every deformable layer against a simulated interconnect (per-device-pair
link latency + bandwidth, halo-exchange and output-shipping traffic from
the actual tap footprints) and shards a batch only when the split's
predicted completion beats serving it whole.  Two workload regimes pin
the decision boundary from both sides:

* **large** — a sequential stream of large-geometry requests on an
  otherwise idle fleet: splits genuinely win (the peer is free, the
  layer is big enough to amortise the scatter/gather), so the cost
  policy must strictly beat always-single (``shard=off``) makespan;
* **baseline** — the PR-5-style burst of small requests that keeps every
  worker's queue busy: co-opting a peer steals time from its own queue,
  so the cost policy must serve unsharded and strictly beat
  always-max-split (``shard=always``) while never losing to ``off``.

Across the two workloads combined, cost must strictly beat *both* fixed
policies.  Every run also records its per-request shard-plan decision
table — plan chosen, predicted vs simulated ms — in the bench JSON, so a
routing regression shows up as data, not as a vibe.  All numbers are
deterministic simulation (fixed seed, simulated clock); the committed
``results/baselines/`` snapshot is gated by the flight recorder.
"""

import numpy as np
import pytest

from repro.fleet import build_fleet
from repro.models import build_classifier
from repro.nas import manual_interval_placement

from common import run_once, write_bench_json, write_result

DEVICES = ("xavier", "2080ti")
MODES = ("off", "cost", "always")

#: large-geometry regime: few big requests, served one at a time
LARGE_SIZE = 192
LARGE_REQUESTS = 3

#: baseline regime: the PR 5 fleet bench's burst of small requests
BASE_SIZE = 32
BASE_REQUESTS = 12
BASE_MAX_BATCH = 2

_EPS = 1e-9


def _model(size: int):
    return build_classifier("r50s", input_size=size,
                            placement=manual_interval_placement(9, 3),
                            bound=7.0, seed=0)


def _decision_rows(sched):
    return [{"worker": d["worker"], "plan": d["plan"], "kind": d["kind"],
             "requests": d["requests"],
             "predicted_ms": round(d["predicted_ms"], 4),
             "simulated_ms": (round(d["simulated_ms"], 4)
                              if d["simulated_ms"] is not None else None),
             "applied": d["applied"]}
            for d in sched.shard_decisions]


def _serve(model, mode: str, images, sequential: bool,
           max_batch: int) -> dict:
    from repro.fleet import SimClock

    clock = SimClock()
    sched = build_fleet(model, DEVICES, shard=mode,
                        max_batch_size=max_batch, seed=0, clock=clock)
    futures = []
    for img in images:
        futures.append(sched.submit(img))
        if sequential:
            # latency-critical sparse stream: the next request arrives
            # only after the fleet has gone fully idle again
            sched.drain()
            clock.advance_to(max(w.busy_until_ms for w in sched.workers))
    sched.drain()
    snap = sched.snapshot()
    shard = snap.get("shard") or {}
    return {
        "makespan_ms": snap["makespan_ms"],
        "completed": snap["completed"],
        "unresolved": len(sched.unresolved()),
        "futures_failed": sum(1 for f in futures
                              if f.exception() is not None),
        "sharded_batches": shard.get("sharded_batches", 0),
        "plans_by_kind": shard.get("plans_by_kind", {}),
        "traffic_bytes": shard.get("traffic_bytes", {}),
        "decisions": _decision_rows(sched),
    }


def _workload(size: int, num: int, sequential: bool,
              max_batch: int) -> dict:
    model = _model(size)
    rng = np.random.default_rng(0)
    images = [rng.uniform(0, 1, size=(3, size, size)).astype(np.float32)
              for _ in range(num)]
    runs = {mode: _serve(model, mode, images, sequential, max_batch)
            for mode in MODES}
    cost = runs["cost"]["makespan_ms"]
    runs["speedup_vs_single"] = round(
        runs["off"]["makespan_ms"] / cost, 4) if cost else 0.0
    runs["speedup_vs_always"] = round(
        runs["always"]["makespan_ms"] / cost, 4) if cost else 0.0
    return runs


def regenerate():
    large = _workload(LARGE_SIZE, LARGE_REQUESTS, sequential=True,
                      max_batch=1)
    baseline = _workload(BASE_SIZE, BASE_REQUESTS, sequential=False,
                         max_batch=BASE_MAX_BATCH)

    rows = []
    for name, wl, n in (("large", large, LARGE_REQUESTS),
                        ("baseline", baseline, BASE_REQUESTS)):
        for mode in MODES:
            r = wl[mode]
            rows.append([name, mode, n, round(r["makespan_ms"], 3),
                         r["sharded_batches"],
                         " ".join(f"{k}={v}" for k, v in
                                  sorted(r["plans_by_kind"].items()))
                         or "-"])
    from repro.pipeline import format_table
    text = format_table(
        ["workload", "shard mode", "reqs", "makespan (sim ms)",
         "sharded batches", "plans by kind"], rows,
        title=f"Fleet sharding — {LARGE_SIZE}px sequential vs "
              f"{BASE_SIZE}px burst across {'+'.join(DEVICES)} (tex2D++)")
    write_result("fleet_sharding", text)
    write_bench_json(
        "fleet_sharding",
        {"large": large, "baseline": baseline,
         "large_size": LARGE_SIZE, "base_size": BASE_SIZE},
        device="jetson-agx-xavier+rtx-2080ti", backend="tex2dpp")
    return large, baseline


@pytest.mark.fleet
@pytest.mark.slow
def test_fleet_sharding_bench(benchmark):
    large, baseline = run_once(benchmark, regenerate)

    # every mode finishes every request with nothing lost
    for wl, n in ((large, LARGE_REQUESTS), (baseline, BASE_REQUESTS)):
        for mode in MODES:
            r = wl[mode]
            assert r["completed"] == n, (mode, r)
            assert r["unresolved"] == 0 and r["futures_failed"] == 0, \
                (mode, r)

    # large geometry, idle peer: cost shards and strictly beats
    # always-single; it never does worse than always-max-split
    assert large["cost"]["sharded_batches"] > 0, large["cost"]
    assert large["cost"]["makespan_ms"] < large["off"]["makespan_ms"], large
    assert (large["cost"]["makespan_ms"]
            <= large["always"]["makespan_ms"] + _EPS), large

    # baseline burst: splitting steals queue time from the peer, so cost
    # must decline it — never losing to off, strictly beating always
    assert (baseline["cost"]["makespan_ms"]
            <= baseline["off"]["makespan_ms"] + _EPS), baseline
    assert (baseline["cost"]["makespan_ms"]
            < baseline["always"]["makespan_ms"]), baseline

    # across both workloads the cost policy strictly beats BOTH fixed
    # policies on total makespan
    cost = large["cost"]["makespan_ms"] + baseline["cost"]["makespan_ms"]
    single = large["off"]["makespan_ms"] + baseline["off"]["makespan_ms"]
    always = (large["always"]["makespan_ms"]
              + baseline["always"]["makespan_ms"])
    assert cost < single and cost < always, (cost, single, always)

    # the decision table records every shard decision with its prediction;
    # applied (sharded) batches also carry the simulated outcome
    for wl in (large, baseline):
        for d in wl["cost"]["decisions"]:
            assert d["plan"] and d["predicted_ms"] >= 0.0, d
            if d["applied"]:
                assert d["simulated_ms"] is not None, d
