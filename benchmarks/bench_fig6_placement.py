"""Fig. 6 — interval-search placement vs the YOLACT++ manual interval.

Regenerates the block diagram: one box per candidate 3×3 site of the
(scaled) ResNet-101 backbone, manual interval-3 on top, the searched
placement below.  Paper findings to reproduce:

* the search uses **fewer (or equal) DCNs** than the manual interval while
  matching or improving accuracy (paper: −2 DCNs, +1.05 mask mAP);
* the selected deformable budget respects the latency target (Eq. 6).
"""

import numpy as np
import pytest

from repro.models import STAGE_BLOCKS
from repro.nas.search import SearchConfig
from repro.pipeline import (AccuracyExperiment, DefconConfig,
                            ExperimentSettings, TrainConfig,
                            format_placement_diagram)

from common import run_once, write_bench_json, write_result


def regenerate():
    settings = ExperimentSettings(
        arch="r101s", train_samples=300, val_samples=150, deformation=1.0,
        train=TrainConfig(epochs=8, batch_size=16, optimizer="sgd", lr=1e-2),
        search=SearchConfig(search_epochs=3, finetune_epochs=3, beta=0.08),
    )
    exp = AccuracyExperiment(settings)
    manual = exp.manual_placement(3)
    latencies = exp.site_latencies_ms()
    # Target: strictly below the manual interval's deformable budget, so
    # the search must come back with fewer-or-cheaper DCNs.
    budget = sum(t for t, u in zip(latencies, manual) if u)
    cfg = DefconConfig(search=True, boundary=True)
    search = exp.run_search(cfg, target_latency_ms=0.75 * budget)

    manual_row = exp.run_fixed("manual interval-3", manual,
                               DefconConfig(boundary=True))
    ours_row = exp.evaluate_searched(search, cfg)

    stages = list(STAGE_BLOCKS["r101s"][1:])
    text = "\n".join([
        "Fig. 6 analogue — DCN placement on the r101s backbone "
        "(stages 3 | 4 | 5)",
        format_placement_diagram(manual, stages, label="YOLACT++ manual"),
        format_placement_diagram(search.placement, stages,
                                 label="interval search "),
        "",
        f"manual: {manual_row.num_dcn} DCNs, accuracy "
        f"{100 * manual_row.accuracy:.1f} %",
        f"ours:   {ours_row.num_dcn} DCNs, accuracy "
        f"{100 * ours_row.accuracy:.1f} %",
        f"deformable latency: manual budget {budget:.1f} ms, target "
        f"{0.75 * budget:.1f} ms, selected "
        f"{search.estimated_latency_ms:.1f} ms",
    ])
    write_result("fig6_placement", text)
    write_bench_json(
        "fig6_placement",
        {"manual_num_dcn": int(sum(manual)),
         "search_num_dcn": int(search.num_dcn),
         "manual_accuracy": manual_row.accuracy,
         "search_accuracy": ours_row.accuracy,
         "manual_budget_ms": budget,
         "selected_latency_ms": search.estimated_latency_ms},
        device="xavier", arch="r101s")
    return manual, search, manual_row, ours_row, budget


def test_fig6_placement(benchmark):
    manual, search, manual_row, ours_row, budget = run_once(
        benchmark, regenerate)
    # fewer (or equal) DCNs than the hand-crafted interval
    assert search.num_dcn <= sum(manual)
    assert search.num_dcn > 0
    # accuracy holds within the noise of these short runs
    assert ours_row.accuracy >= manual_row.accuracy - 0.08
    # the selected deformable budget stays at or under the manual
    # interval's budget (the point of the latency penalty)
    assert search.estimated_latency_ms <= budget + 1e-9