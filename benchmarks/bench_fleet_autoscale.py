"""Elastic autoscaling vs static fleets under open-loop traffic.

The production-traffic scenario: a diurnal + flash-crowd request stream
(``repro.fleet.loadgen``) swept across offered-load levels, served by
three fleet configurations —

* **static-min** — the smallest fleet (one Xavier), cheapest possible
  worker-hours, falls over under load;
* **static-max** — the autoscaler's ``max_workers`` provisioned for the
  whole run, meets the SLO by brute force at maximum cost;
* **autoscale** — starts at static-min and grows/shrinks against queue
  depth and windowed p99 burn rate, paying warm-up (tile-store warm
  start vs cold tune) before each new worker serves.

Two claims are gated (the ISSUE 9 acceptance criteria):

* at the peak offered load the autoscaled fleet **meets the p99 SLO
  where static-min violates it**, while consuming **strictly fewer
  worker-milliseconds than static-max**;
* the whole run is a deterministic simulation — the autoscaled peak run
  is executed twice and must produce identical snapshots.

Workers are simulation-only (stub engines priced by the same
``deform_latency_ms`` model the cost router uses), so the sweep is fast
and exact.  p50/p99-vs-offered-load curves land in
``results/BENCH_fleet_autoscale.json`` for the flight recorder.
"""

import pytest

from repro.fleet import (AutoscalePolicy, BurstEpisode, ElasticAutoscaler,
                         FleetScheduler, LoadSpec, RequestClass,
                         sim_worker_provider)

from common import run_once, write_bench_json, write_result

#: p99 SLO on simulated request latency (ms)
SLO_MS = 8.0
#: offered load relative to one Xavier's capacity; the last is the peak
LOAD_LEVELS = (0.5, 1.0, 1.7)
DURATION_MS = 40.0
INPUT_SIZE = 32

#: the autoscaler targets a tighter internal p99 than the external SLO,
#: so it reacts while there is still error budget left
POLICY = AutoscalePolicy(
    min_workers=1, max_workers=4, catalogue=("xavier", "2080ti"),
    p99_ms=2.5, burn_up=1.0, depth_up=2.0, burn_down=0.25,
    depth_down=0.5, down_intervals=3, interval_ms=1.0,
    up_cooldown_ms=1.0, down_cooldown_ms=4.0, warm_ms=0.5, cold_ms=2.0)

#: the static-max fleet: POLICY.max_workers drawn from the catalogue
MAX_DEVICES = tuple(POLICY.catalogue[i % len(POLICY.catalogue)]
                    for i in range(POLICY.max_workers))


def _provider():
    return sim_worker_provider(max_batch_size=4, queue_capacity=64)


def _base_spec():
    """Traffic shaped like a day with a flash crowd, normalised so load
    level 1.0 equals one Xavier worker's service capacity."""
    provider = _provider()
    per_image = provider("probe", "xavier").predict_ms(
        (3, INPUT_SIZE, INPUT_SIZE), 1)
    capacity_rpms = 1.0 / per_image
    return LoadSpec(
        requests=max(1, int(round(capacity_rpms * DURATION_MS))),
        duration_ms=DURATION_MS, diurnal_amplitude=0.4, diurnal_cycles=1.0,
        bursts=(BurstEpisode(12.0, 18.0, 2.5),),
        classes=(RequestClass("std", 1.0, INPUT_SIZE, None, 0),),
        seed=42), per_image


def _run(devices, spec, policy=None):
    """One configuration at one load level; returns its curve point."""
    provider = _provider()
    workers = [provider(f"w{i}-{d}", d) for i, d in enumerate(devices)]
    sched = FleetScheduler(workers, router="cost")
    auto = None
    if policy is not None:
        auto = ElasticAutoscaler(policy, provider).attach(sched)
    futures = sched.run_load(spec.events(), autoscaler=auto)
    sched.close()
    snap = sched.snapshot()
    if auto is not None:
        asnap = auto.snapshot()
        worker_ms = asnap["worker_ms"]
        peak_workers = asnap["peak_workers"]
    else:
        asnap = None
        worker_ms = round(len(devices) * snap["makespan_ms"], 3)
        peak_workers = len(devices)
    p99 = snap["latency_p99_ms"]
    point = {
        "offered_rpms": round(spec.offered_rpms, 3),
        "submitted": snap["submitted"],
        "completed": snap["completed"],
        "rejected": sum(snap["rejected_by_reason"].values()),
        "p50_ms": snap["latency_p50_ms"],
        "p99_ms": p99,
        "attained": int(p99 is not None and p99 <= SLO_MS),
        "peak_workers": peak_workers,
        "worker_ms": worker_ms,
        "unresolved": len(sched.unresolved()),
        "futures_failed": sum(1 for f in futures
                              if f.exception() is not None),
    }
    if asnap is not None:
        point["scale_ups"] = asnap["scale_ups"]
        point["scale_downs"] = asnap["scale_downs"]
    return point, snap, asnap


def regenerate():
    base, per_image = _base_spec()
    configs = {
        "static_min": (("xavier",), None),
        "static_max": (MAX_DEVICES, None),
        "autoscale": (("xavier",), POLICY),
    }
    curves = {name: {} for name in configs}
    for level in LOAD_LEVELS:
        spec = base.scaled(level)
        for name, (devices, policy) in configs.items():
            point, _, _ = _run(devices, spec, policy)
            curves[name][f"{level:g}x"] = point

    # determinism: the autoscaled peak run, twice, snapshot-identical
    peak_spec = base.scaled(LOAD_LEVELS[-1])
    _, snap_a, auto_a = _run(("xavier",), peak_spec, POLICY)
    _, snap_b, auto_b = _run(("xavier",), peak_spec, POLICY)
    deterministic = int(snap_a == snap_b and auto_a == auto_b)

    peak_key = f"{LOAD_LEVELS[-1]:g}x"
    peak = {
        "min_p99_ms": curves["static_min"][peak_key]["p99_ms"],
        "auto_p99_ms": curves["autoscale"][peak_key]["p99_ms"],
        "max_p99_ms": curves["static_max"][peak_key]["p99_ms"],
        "min_attained": curves["static_min"][peak_key]["attained"],
        "auto_attained": curves["autoscale"][peak_key]["attained"],
        "auto_worker_ms": curves["autoscale"][peak_key]["worker_ms"],
        "max_worker_ms": curves["static_max"][peak_key]["worker_ms"],
        "worker_ms_saving_vs_max": round(
            curves["static_max"][peak_key]["worker_ms"]
            - curves["autoscale"][peak_key]["worker_ms"], 3),
        "deterministic": deterministic,
    }

    rows = []
    for level in LOAD_LEVELS:
        key = f"{level:g}x"
        for name in configs:
            pt = curves[name][key]
            rows.append([key, name, pt["offered_rpms"], pt["submitted"],
                         pt["completed"], pt["p50_ms"], pt["p99_ms"],
                         "ok" if pt["attained"] else "VIOLATED",
                         pt["peak_workers"], pt["worker_ms"],
                         pt["unresolved"]])
    from repro.pipeline import format_table
    text = format_table(
        ["load", "fleet", "req/ms", "submitted", "completed", "p50 ms",
         "p99 ms", f"p99<={SLO_MS:g}ms", "peak workers", "worker-ms",
         "unresolved"],
        rows,
        title=f"Elastic autoscaling vs static fleets — {base.describe()}, "
              f"scaled x{'/'.join(f'{l:g}' for l in LOAD_LEVELS)}")
    write_result("fleet_autoscale", text)
    write_bench_json(
        "fleet_autoscale",
        {"slo_ms": SLO_MS, "per_image_ms": round(per_image, 4),
         "duration_ms": DURATION_MS, "curves": curves, "peak": peak},
        device="+".join(dict.fromkeys(MAX_DEVICES)), backend="tex2dpp",
        policy={"min": POLICY.min_workers, "max": POLICY.max_workers,
                "catalogue": list(POLICY.catalogue)})
    return curves, peak


@pytest.mark.fleet
@pytest.mark.slow
def test_fleet_autoscale_bench(benchmark):
    curves, peak = run_once(benchmark, regenerate)

    # nothing lost, ever: every future resolves in every configuration
    for name, curve in curves.items():
        for level, pt in curve.items():
            assert pt["unresolved"] == 0, (name, level, pt)
            assert pt["futures_failed"] == 0, (name, level, pt)
            assert pt["completed"] == pt["submitted"] - pt["rejected"], \
                (name, level, pt)

    # the headline: at peak load the autoscaler meets the p99 SLO where
    # static-min violates it, for strictly fewer worker-ms than
    # static-max
    assert peak["min_attained"] == 0, peak
    assert peak["auto_attained"] == 1, peak
    assert peak["auto_p99_ms"] <= SLO_MS < peak["min_p99_ms"], peak
    assert peak["auto_worker_ms"] < peak["max_worker_ms"], peak

    # elasticity actually happened (not a statically over-provisioned run)
    peak_key = max(curves["autoscale"])
    assert curves["autoscale"][peak_key]["scale_ups"] >= 1
    assert curves["autoscale"][peak_key]["peak_workers"] > 1

    # at the comfortable load level the autoscaler stays near minimum
    low_key = min(curves["autoscale"])
    assert curves["autoscale"][low_key]["worker_ms"] \
        < curves["static_max"][low_key]["worker_ms"]

    # deterministic per seed: identical snapshots across two invocations
    assert peak["deterministic"] == 1, peak


if __name__ == "__main__":
    regenerate()
