"""Setup shim for environments without PEP-517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DEFCON reproduction: deformable convolutions with interval search "
        "and simulated GPU texture hardware"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
)
